"""Columnar simulation results: the whole batch as arrays, objects on demand.

Profiling after the cross-config kernel landed showed the vectorized
backend's remaining hot path was not NumPy math but per-entry Python report
*assembly*: constructing a ``LayerExecutionResult`` / ``StepResult`` /
``SimulationReport`` object graph row by row, then paying the same object
tax again on every cache hit, artifact read and wire decode.  This module
applies the throughput-first discipline of high-rate acquisition pipelines
— keep data columnar until a human asks for a record — to simulation
reports:

:class:`ColumnarReportBatch`
    One ``(config x trace x step x layer)`` result grid held as a handful
    of contiguous NumPy arrays (per-layer cycles/MACs/channel counts, the 7
    :class:`~repro.accelerator.energy.EnergyBreakdown` components, per-step
    and per-trace totals, detector activity) plus offset tables.  The
    vectorized kernel produces it directly, with **zero** per-entry Python
    object construction.

Lazy materialization
    :meth:`ColumnarReportBatch.report` builds one real
    :class:`~repro.accelerator.simulator.SimulationReport` on demand —
    bitwise identical to the eagerly assembled report, because both read
    the very same float64 cells (the per-step/per-trace totals are stored
    exactly as ``_segment_sums`` produced them, preserving the reference
    loop's sequential association).  Materialized reports are memoized on
    the batch, so the object tax is paid at most once per (config, trace)
    no matter how many cache hits or sweep indexings follow.

Sweep-level queries
    :attr:`total_cycles` / :attr:`total_energy_pj` /
    :attr:`mac_skip_fraction` answer "which design point wins?" questions
    straight from the arrays, materializing nothing.

Batches round-trip the wire as a single ``columnar_report_batch@1``
envelope (arrays as ``$ndarray`` sidecars — see :mod:`repro.core.schemas`)
instead of thousands of nested JSON objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from .telemetry import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..accelerator.simulator import SimulationReport

#: The 7 EnergyBreakdown components, in the dataclass's positional order —
#: column order of every ``*_totals`` / ``layer_energy`` array below.
ENERGY_COMPONENTS = (
    "mac_pj",
    "local_buffer_pj",
    "global_buffer_pj",
    "dram_pj",
    "noc_pj",
    "detector_pj",
    "idle_pj",
)

#: Columns of ``step_totals`` / ``trace_totals``: cycles, then the 7 energies.
TOTALS_WIDTH = 1 + len(ENERGY_COMPONENTS)

# How many reports were actually materialized from columnar batches — the
# observable cost of leaving the columnar world (each increment is one full
# object-graph construction).  Sweeps that only read array aggregates keep
# this flat.
_MATERIALIZED = get_registry().counter(
    "repro_reports_materialized_total",
    "SimulationReports lazily materialized from columnar result batches.",
)


# Result classes resolved once on first materialization (import here would
# be circular: the accelerator modules import this one).
_RESULT_TYPES: tuple | None = None


def _result_types() -> tuple:
    global _RESULT_TYPES
    if _RESULT_TYPES is None:
        from ..accelerator.backends.base import DetectorStats
        from ..accelerator.controller import LayerExecutionResult
        from ..accelerator.energy import EnergyBreakdown
        from ..accelerator.simulator import SimulationReport, StepResult

        _RESULT_TYPES = (
            DetectorStats,
            LayerExecutionResult,
            EnergyBreakdown,
            SimulationReport,
            StepResult,
        )
    return _RESULT_TYPES


def _as_1d(array: np.ndarray, dtype: type, name: str, length: int) -> np.ndarray:
    array = np.asarray(array, dtype=dtype)
    if array.ndim != 1 or array.shape[0] != length:
        raise ValueError(f"{name} must have shape ({length},), got {array.shape}")
    return array


@dataclass(eq=False, slots=True)
class ColumnarReportBatch:
    """A ``(config x trace x step x layer)`` result grid in columnar form.

    Shapes (``C`` configs, ``T`` traces, ``S`` steps, ``E`` layer entries,
    all flattened config-major then trace-major, exactly the vectorized
    kernel's entry order):

    * ``config_names`` (len C), ``clock_ghz`` (C,), ``traces_per_config`` (C,)
    * ``trace_steps`` (T,) — steps per trace; ``step_sizes`` (S,) — layers
      per step (the offset tables; starts are their exclusive cumsums)
    * per-layer columns, all (E,): ``layer_names`` (list), ``layer_cycles``,
      ``total_macs``, ``executed_macs``, ``dense_channels``,
      ``sparse_channels``, ``dense_cycles``, ``sparse_cycles`` and
      ``layer_energy`` (E, 7)
    * ``step_totals`` (S, 8) and ``trace_totals`` (T, 8): cycles plus the 7
      energy components, stored exactly as ``_segment_sums`` produced them
      so materialized totals keep the reference loop's float association
    * ``detector_updates`` / ``detector_channels`` (T,): per-(config, trace)
      temporal-sparsity-detector activity
    """

    config_names: list[str]
    clock_ghz: np.ndarray
    traces_per_config: np.ndarray
    trace_steps: np.ndarray
    step_sizes: np.ndarray
    layer_names: list[str]
    layer_cycles: np.ndarray
    layer_energy: np.ndarray
    total_macs: np.ndarray
    executed_macs: np.ndarray
    dense_channels: np.ndarray
    sparse_channels: np.ndarray
    dense_cycles: np.ndarray
    sparse_cycles: np.ndarray
    step_totals: np.ndarray
    trace_totals: np.ndarray
    detector_updates: np.ndarray
    detector_channels: np.ndarray

    #: Materialization memo (flat trace index -> report) and lazily built
    #: offset tables.  Never encoded; shared batches hand out one report
    #: object per (config, trace), mirroring the report cache's read-only
    #: sharing contract.
    _reports: dict = field(default_factory=dict, init=False, repr=False)
    _offsets: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if not all(isinstance(name, str) for name in self.config_names):
            raise ValueError("config_names must be strings")
        num_configs = len(self.config_names)
        self.clock_ghz = _as_1d(self.clock_ghz, np.float64, "clock_ghz", num_configs)
        self.traces_per_config = _as_1d(
            self.traces_per_config, np.int64, "traces_per_config", num_configs
        )
        num_traces = int(self.traces_per_config.sum())
        self.trace_steps = _as_1d(self.trace_steps, np.int64, "trace_steps", num_traces)
        num_steps = int(self.trace_steps.sum())
        self.step_sizes = _as_1d(self.step_sizes, np.int64, "step_sizes", num_steps)
        num_entries = int(self.step_sizes.sum())
        if len(self.layer_names) != num_entries or not all(
            isinstance(name, str) for name in self.layer_names
        ):
            raise ValueError(f"layer_names must be {num_entries} strings")
        for name, dtype in (
            ("layer_cycles", np.float64),
            ("total_macs", np.float64),
            ("executed_macs", np.float64),
            ("dense_channels", np.int64),
            ("sparse_channels", np.int64),
            ("dense_cycles", np.float64),
            ("sparse_cycles", np.float64),
        ):
            setattr(self, name, _as_1d(getattr(self, name), dtype, name, num_entries))
        for name, rows, width in (
            ("layer_energy", num_entries, len(ENERGY_COMPONENTS)),
            ("step_totals", num_steps, TOTALS_WIDTH),
            ("trace_totals", num_traces, TOTALS_WIDTH),
        ):
            array = np.asarray(getattr(self, name), dtype=np.float64)
            if array.shape != (rows, width):
                raise ValueError(f"{name} must have shape ({rows}, {width}), got {array.shape}")
            setattr(self, name, array)
        self.detector_updates = _as_1d(
            self.detector_updates, np.int64, "detector_updates", num_traces
        )
        self.detector_channels = _as_1d(
            self.detector_channels, np.int64, "detector_channels", num_traces
        )

    # -- shape -----------------------------------------------------------------

    @property
    def num_configs(self) -> int:
        return len(self.config_names)

    @property
    def num_traces(self) -> int:
        """Total (config, trace) pairs — one report each."""
        return len(self.trace_steps)

    @property
    def num_steps(self) -> int:
        return len(self.step_sizes)

    @property
    def num_entries(self) -> int:
        """Flattened (config, trace, step, layer) rows."""
        return len(self.layer_names)

    def offsets(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(config->trace, trace->step, step->entry) exclusive-cumsum starts.

        Each array has one trailing end sentinel, so segment ``i`` spans
        ``[starts[i], starts[i + 1])``.  Built once, on first use.
        """
        if self._offsets is None:
            zero = np.zeros(1, dtype=np.int64)
            self._offsets = (
                np.concatenate([zero, np.cumsum(self.traces_per_config)]),
                np.concatenate([zero, np.cumsum(self.trace_steps)]),
                np.concatenate([zero, np.cumsum(self.step_sizes)]),
            )
        return self._offsets

    def _config_of(self, flat: int) -> int:
        config_starts = self.offsets()[0]
        return int(np.searchsorted(config_starts, flat, side="right")) - 1

    def trace_index(self, config: int, trace: int) -> int:
        """Flat trace index of (config, trace-within-config), range-checked."""
        if not 0 <= config < self.num_configs:
            raise IndexError(f"config index {config} out of range [0, {self.num_configs})")
        if not 0 <= trace < int(self.traces_per_config[config]):
            raise IndexError(
                f"trace index {trace} out of range [0, "
                f"{int(self.traces_per_config[config])}) for config {config}"
            )
        return int(self.offsets()[0][config]) + trace

    # -- sweep-level aggregates (no materialization) ---------------------------

    @property
    def total_cycles(self) -> np.ndarray:
        """Per-(config, trace) total cycles, shape (num_traces,)."""
        return self.trace_totals[:, 0]

    @property
    def total_energy_pj(self) -> np.ndarray:
        """Per-(config, trace) total energy in pJ, shape (num_traces,)."""
        return self.trace_totals[:, 1:].sum(axis=1)

    def _per_trace_entry_sums(self, column: np.ndarray) -> np.ndarray:
        """Per-trace sums of one per-layer column (float64 running order)."""
        _, trace_step_starts, step_entry_starts = self.offsets()
        entry_bounds = step_entry_starts[trace_step_starts]
        prefix = np.concatenate([[0.0], np.cumsum(column, dtype=np.float64)])
        return prefix[entry_bounds[1:]] - prefix[entry_bounds[:-1]]

    @property
    def trace_total_macs(self) -> np.ndarray:
        return self._per_trace_entry_sums(self.total_macs)

    @property
    def trace_executed_macs(self) -> np.ndarray:
        return self._per_trace_entry_sums(self.executed_macs)

    @property
    def mac_skip_fraction(self) -> np.ndarray:
        """Per-(config, trace) skipped-MAC fraction (0.0 where no MACs ran)."""
        totals = self.trace_total_macs
        executed = self.trace_executed_macs
        return np.divide(
            totals - executed, totals, out=np.zeros_like(totals), where=totals > 0
        )

    # -- lazy materialization --------------------------------------------------

    def report(self, config: int, trace: int) -> "SimulationReport":
        """The full report of one (config, trace) pair, built on demand.

        Bitwise identical to the eagerly assembled report: every scalar is
        converted from the same float64 cell the eager loop read, and the
        step/trace totals were stored exactly as ``_segment_sums`` summed
        them.  The constructed object is memoized, so repeated indexing
        (cache hits, sweep views) costs one dict lookup.
        """
        return self.report_at(self.trace_index(config, trace))

    def report_at(self, flat: int) -> "SimulationReport":
        """Like :meth:`report`, addressed by flat trace index."""
        if not 0 <= flat < self.num_traces:
            raise IndexError(f"flat trace index {flat} out of range [0, {self.num_traces})")
        report = self._reports.get(flat)
        if report is None:
            report = self._reports.setdefault(flat, self._materialize(flat))
        return report

    def _materialize(self, flat: int) -> "SimulationReport":
        DetectorStats, LayerExecutionResult, EnergyBreakdown, SimulationReport, StepResult = (
            _result_types()
        )

        _MATERIALIZED.inc()
        config = self._config_of(flat)
        _, trace_step_starts, step_entry_starts = self.offsets()
        s0, s1 = int(trace_step_starts[flat]), int(trace_step_starts[flat + 1])
        e0, e1 = int(step_entry_starts[s0]), int(step_entry_starts[s1])

        # Bulk-convert the trace's slice to Python scalars once, then build
        # positionally — the same construction (and therefore the same bit
        # patterns) as the eager assembly loop this module replaced.  Row
        # layout: cycles, total/executed MACs, dense/sparse channel counts,
        # dense/sparse cycles, then the 7 EnergyBreakdown components.
        names = self.layer_names[e0:e1]
        energy = self.layer_energy[e0:e1]
        per_layer = list(
            zip(
                self.layer_cycles[e0:e1].tolist(),
                self.total_macs[e0:e1].tolist(),
                self.executed_macs[e0:e1].tolist(),
                self.dense_channels[e0:e1].tolist(),
                self.sparse_channels[e0:e1].tolist(),
                self.dense_cycles[e0:e1].tolist(),
                self.sparse_cycles[e0:e1].tolist(),
                *[energy[:, column].tolist() for column in range(energy.shape[1])],
            )
        )
        layer_results = [
            LayerExecutionResult(
                names[i], row[0], EnergyBreakdown(*row[7:]), row[1], row[2],
                row[3], row[4], [], row[5], row[6],
            )
            for i, row in enumerate(per_layer)
        ]
        starts = (step_entry_starts[s0 : s1 + 1] - e0).tolist()
        step_results = [
            StepResult(
                time_step,
                row[0],
                EnergyBreakdown(*row[1:]),
                layer_results[starts[time_step] : starts[time_step + 1]],
            )
            for time_step, row in enumerate(self.step_totals[s0:s1].tolist())
        ]
        totals_row = self.trace_totals[flat].tolist()
        return SimulationReport(
            config_name=self.config_names[config],
            total_cycles=totals_row[0],
            total_energy=EnergyBreakdown(*totals_row[1:]),
            step_results=step_results,
            clock_ghz=float(self.clock_ghz[config]),
            detector_stats=DetectorStats(
                int(self.detector_updates[flat]), int(self.detector_channels[flat])
            ),
        )

    def _materialize_all(self) -> None:
        """Bulk-build every unmemoized report in one pass over the batch.

        Same construction (and the same bit patterns) as per-trace
        :meth:`_materialize`, but each column crosses the NumPy/Python
        boundary once for the whole batch instead of once per trace — on
        many-trace sweeps the per-slice ``tolist`` overhead dominates.
        """
        DetectorStats, LayerExecutionResult, EnergyBreakdown, SimulationReport, StepResult = (
            _result_types()
        )
        _, trace_step_starts, step_entry_starts = self.offsets()
        energy = self.layer_energy
        names = self.layer_names
        per_layer = zip(
            self.layer_cycles.tolist(),
            self.total_macs.tolist(),
            self.executed_macs.tolist(),
            self.dense_channels.tolist(),
            self.sparse_channels.tolist(),
            self.dense_cycles.tolist(),
            self.sparse_cycles.tolist(),
            *[energy[:, column].tolist() for column in range(energy.shape[1])],
        )
        layer_results = [
            LayerExecutionResult(
                names[i], row[0], EnergyBreakdown(*row[7:]), row[1], row[2],
                row[3], row[4], [], row[5], row[6],
            )
            for i, row in enumerate(per_layer)
        ]
        step_rows = self.step_totals.tolist()
        trace_rows = self.trace_totals.tolist()
        entry_starts = step_entry_starts.tolist()
        step_starts = trace_step_starts.tolist()
        clocks = self.clock_ghz.tolist()
        updates = self.detector_updates.tolist()
        channels = self.detector_channels.tolist()
        built = 0
        flat = 0
        for config, count in enumerate(self.traces_per_config.tolist()):
            config_name = self.config_names[config]
            clock = clocks[config]
            for _ in range(count):
                if flat not in self._reports:
                    s0, s1 = step_starts[flat], step_starts[flat + 1]
                    step_results = [
                        StepResult(
                            time_step,
                            row[0],
                            EnergyBreakdown(*row[1:]),
                            layer_results[
                                entry_starts[s0 + time_step] : entry_starts[s0 + time_step + 1]
                            ],
                        )
                        for time_step, row in enumerate(step_rows[s0:s1])
                    ]
                    totals_row = trace_rows[flat]
                    self._reports.setdefault(
                        flat,
                        SimulationReport(
                            config_name=config_name,
                            total_cycles=totals_row[0],
                            total_energy=EnergyBreakdown(*totals_row[1:]),
                            step_results=step_results,
                            clock_ghz=clock,
                            detector_stats=DetectorStats(updates[flat], channels[flat]),
                        ),
                    )
                    built += 1
                flat += 1
        if built:
            _MATERIALIZED.inc(built)

    def report_lists(self) -> "list[list[SimulationReport]]":
        """Materialize every report, grouped per config (kernel-entry order)."""
        config_starts = self.offsets()[0]
        if len(self._reports) < self.num_traces:
            self._materialize_all()
        return [
            [self.report_at(flat) for flat in range(config_starts[c], config_starts[c + 1])]
            for c in range(self.num_configs)
        ]

    # -- slicing ---------------------------------------------------------------

    def slice_trace(self, flat: int) -> "ColumnarReportBatch":
        """A standalone single-(config, trace) batch (arrays copied).

        This is how per-key cache entries and per-request wire payloads are
        carved out of a fused sweep batch without materializing anything:
        pure array slicing, values bit-identical to the parent's.
        """
        if not 0 <= flat < self.num_traces:
            raise IndexError(f"flat trace index {flat} out of range [0, {self.num_traces})")
        config = self._config_of(flat)
        _, trace_step_starts, step_entry_starts = self.offsets()
        s0, s1 = int(trace_step_starts[flat]), int(trace_step_starts[flat + 1])
        e0, e1 = int(step_entry_starts[s0]), int(step_entry_starts[s1])
        return ColumnarReportBatch(
            config_names=[self.config_names[config]],
            clock_ghz=self.clock_ghz[config : config + 1].copy(),
            traces_per_config=np.ones(1, dtype=np.int64),
            trace_steps=self.trace_steps[flat : flat + 1].copy(),
            step_sizes=self.step_sizes[s0:s1].copy(),
            layer_names=self.layer_names[e0:e1],
            layer_cycles=self.layer_cycles[e0:e1].copy(),
            layer_energy=self.layer_energy[e0:e1].copy(),
            total_macs=self.total_macs[e0:e1].copy(),
            executed_macs=self.executed_macs[e0:e1].copy(),
            dense_channels=self.dense_channels[e0:e1].copy(),
            sparse_channels=self.sparse_channels[e0:e1].copy(),
            dense_cycles=self.dense_cycles[e0:e1].copy(),
            sparse_cycles=self.sparse_cycles[e0:e1].copy(),
            step_totals=self.step_totals[s0:s1].copy(),
            trace_totals=self.trace_totals[flat : flat + 1].copy(),
            detector_updates=self.detector_updates[flat : flat + 1].copy(),
            detector_channels=self.detector_channels[flat : flat + 1].copy(),
        )

    def slices(self) -> "list[ColumnarReportBatch]":
        """One standalone single-trace batch per (config, trace) pair."""
        return [self.slice_trace(flat) for flat in range(self.num_traces)]

    # -- equality (tests, cache round-trips) -----------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ColumnarReportBatch):
            return NotImplemented
        if self.config_names != other.config_names or self.layer_names != other.layer_names:
            return False
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in ARRAY_FIELDS
        )

    __hash__ = None  # type: ignore[assignment] - mutable arrays


#: Array-valued fields of the batch, in declaration (and wire) order.
ARRAY_FIELDS = (
    "clock_ghz",
    "traces_per_config",
    "trace_steps",
    "step_sizes",
    "layer_cycles",
    "layer_energy",
    "total_macs",
    "executed_macs",
    "dense_channels",
    "sparse_channels",
    "dense_cycles",
    "sparse_cycles",
    "step_totals",
    "trace_totals",
    "detector_updates",
    "detector_channels",
)


def ensure_report(result: Any) -> Any:
    """Materialize a single-trace columnar batch; pass reports through.

    The one seam where lazily held results become objects: job sinks, sweep
    views and cache lookups all funnel through here, and the batch's memo
    guarantees the construction happens at most once per (config, trace).
    """
    if isinstance(result, ColumnarReportBatch):
        if result.num_traces != 1:
            raise ValueError(
                f"expected a single-trace batch, got {result.num_traces} traces; "
                "slice it first (ColumnarReportBatch.slice_trace)"
            )
        return result.report_at(0)
    return result
