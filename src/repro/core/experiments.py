"""Declarative experiment sweeps with parallel fan-out.

Every sweep in this codebase — block sensitivity (Fig. 3), threshold /
update-period analysis (Fig. 11), per-workload hardware evaluation
(Fig. 12), PE-scaling studies — has the same shape: a Cartesian grid of
parameter values, one evaluation function, one result per grid point.  This
module gives that shape a first-class API:

    spec = SweepSpec(name="pe-scaling", grid={"multipliers": [64, 128, 256]})
    result = run_sweep(lambda multipliers: simulate(multipliers), spec)
    result.values()  # in grid order, regardless of executor

Execution goes through the unified execution API
(:mod:`repro.core.execution`): pass any :class:`~repro.core.execution.Executor`
instance — ``InlineExecutor``, ``PoolExecutor`` (thread/process),
``ServiceExecutor``, ``RemoteExecutor``, or a third-party backend registered
with :func:`~repro.core.execution.register_executor` — and the sweep's grid
points are submitted as jobs on it.  Omitting ``executor`` fans out over a
thread pool (the NumPy-heavy evaluation functions release the GIL for their
array work).  Legacy string names (``"thread"`` / ``"process"`` /
``"serial"`` / ``"service"`` / ``"remote"``) still resolve through the
executor registry but emit a :class:`DeprecationWarning`.  Results always
come back in deterministic grid order; failures either propagate
(``on_error="raise"``) or are captured per-case (``on_error="capture"``) so
one bad design point cannot sink a thousand-point sweep.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from .execution import (
    Executor,
    InlineExecutor,
    JobFailedError,
    LocalCallSpec,
    PoolExecutor,
    ensure_picklable,  # noqa: F401 - canonical home moved; re-exported for compat
    executor_names,
    resolve_executor,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only; serve imports us at runtime
    from ..serve.client import RemoteEvaluationClient
    from ..serve.service import EvaluationService

#: Legacy string names accepted (deprecated) by :func:`run_sweep`.
EXECUTORS = ("thread", "process", "serial", "service", "remote", "inline")

#: What the deprecation warning suggests per legacy name.
_EXECUTOR_REPLACEMENTS = {
    "thread": 'PoolExecutor("thread")',
    "process": 'PoolExecutor("process")',
    "serial": "InlineExecutor()",
    "inline": "InlineExecutor()",
    "service": "ServiceExecutor(...)",
    "remote": "RemoteExecutor(endpoint=...)",
}


def _require_picklable_case_fn(fn: Callable[..., Any]) -> None:
    ensure_picklable(
        fn,
        f"the 'process' executor requires a picklable case function, "
        f"but {fn!r} cannot be pickled. Use a module-level function taking "
        "plain-data arguments, or executor='thread' for closures over live objects.",
    )


def _require_wire_case_fn(fn: Callable[..., Any] | str) -> None:
    """Remote sweeps name server-side functions; nothing callable crosses the wire."""
    if isinstance(fn, str):
        return
    from ..serve.specs import wire_function_name

    if wire_function_name(fn) is None:
        raise ValueError(
            f"executor='remote' submits *named* server-side functions over the "
            f"typed JSON wire, but {fn!r} is not a registered wire function. "
            "Register it with repro.serve.specs.register_wire_function (the "
            "server must import the registering module too), pass its "
            "registered name as a string, or use executor='service' to run "
            "the sweep in-process."
        )


@dataclass(frozen=True)
class SweepSpec:
    """A named Cartesian parameter grid.

    ``grid`` maps parameter names to the values they sweep over; the sweep
    enumerates the full cross product in row-major order (last parameter
    varies fastest), matching nested-loop reading order.
    """

    name: str
    grid: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("sweep grid must name at least one parameter")
        for param, values in self.grid.items():
            if len(values) == 0:
                raise ValueError(f"sweep parameter {param!r} has no values")

    @property
    def num_cases(self) -> int:
        size = 1
        for values in self.grid.values():
            size *= len(values)
        return size

    def cases(self) -> list[dict[str, Any]]:
        """All parameter assignments of the grid, in deterministic order."""
        names = list(self.grid)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.grid[name] for name in names))
        ]


@dataclass
class SweepCaseResult:
    """Outcome of one grid point."""

    index: int
    params: dict[str, Any]
    value: Any = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All grid-point outcomes of one sweep, in grid order."""

    spec: SweepSpec
    cases: list[SweepCaseResult] = field(default_factory=list)

    def values(self) -> list[Any]:
        """The per-case values, raising if any case failed."""
        for case in self.cases:
            if not case.ok:
                raise RuntimeError(
                    f"sweep {self.spec.name!r} case {case.params} failed"
                ) from case.error
        return [case.value for case in self.cases]

    def failures(self) -> list[SweepCaseResult]:
        return [case for case in self.cases if not case.ok]


def run_sweep(
    fn: Callable[..., Any] | str,
    spec: SweepSpec | Mapping[str, Sequence[Any]],
    *,
    executor: "Executor | str | None" = None,
    max_workers: int | None = None,
    on_error: str = "raise",
    service: "EvaluationService | RemoteEvaluationClient | None" = None,
    endpoint: str | None = None,
) -> SweepResult:
    """Evaluate ``fn(**params)`` over every grid point of ``spec``.

    Parameters
    ----------
    fn:
        Evaluation function taking the grid's parameters as keyword
        arguments, or a registered wire-function *name*.  A process-pool
        executor needs a picklable (module-level) function; a
        :class:`~repro.core.execution.RemoteExecutor` needs a registered
        wire function (or its name), since remote jobs cross the wire as
        typed JSON specs, never as code.
    spec:
        A :class:`SweepSpec`, or a bare ``{param: values}`` mapping which is
        wrapped into an anonymous spec.
    executor:
        Any :class:`~repro.core.execution.Executor` instance (left open for
        the caller to close), or None for an ephemeral thread pool sized by
        ``max_workers``.  Legacy string names — ``"thread"``, ``"process"``,
        ``"serial"``/``"inline"``, ``"service"``, ``"remote"`` — are
        **deprecated**: they still resolve through the executor registry
        (:func:`~repro.core.execution.resolve_executor`) but emit a
        :class:`DeprecationWarning` naming the replacement.
    max_workers:
        Worker count when this call builds its own pooled executor (library
        default if None); ignored when an executor instance is given.
    on_error:
        ``"raise"`` propagates the first failure; ``"capture"`` records the
        exception on the affected :class:`SweepCaseResult` and continues.
        Remote failures carry the server-side error message, not the
        original exception type.
    service:
        Deprecated-path plumbing: the evaluation service for
        ``executor="service"`` (an ephemeral one is created — and shut
        down — when omitted), or an existing
        :class:`RemoteEvaluationClient` for ``executor="remote"``.
    endpoint:
        Deprecated-path plumbing: server base URL for ``executor="remote"``
        (e.g. ``"http://127.0.0.1:8035"``); ignored when ``service`` is
        given.
    """
    if not isinstance(spec, SweepSpec):
        spec = SweepSpec(name="sweep", grid=dict(spec))
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")

    owned = True
    if executor is None:
        executor = PoolExecutor("thread", max_workers=max_workers)
    elif isinstance(executor, str):
        executor = _resolve_legacy_executor(executor, fn, max_workers, service, endpoint)
    elif isinstance(executor, Executor):
        owned = False
    else:
        # Catch the likely migration slip (passing an EvaluationService or a
        # client here) before it surfaces as a bare AttributeError deep in map().
        raise TypeError(
            f"executor must be a repro.core.execution.Executor instance, one of the "
            f"registered names {sorted(executor_names())}, or None for the thread-pool "
            f"default — got {type(executor).__name__}. Wrap a live service/client via "
            "service.as_executor() / client.as_executor()."
        )

    cases = [SweepCaseResult(index=i, params=params) for i, params in enumerate(spec.cases())]
    call_specs = [LocalCallSpec(fn=fn, kwargs=case.params) for case in cases]
    labels = [f"{spec.name}[{case.index}]" for case in cases]
    try:
        if isinstance(executor, InlineExecutor) and on_error == "raise":
            # Inline execution is synchronous, so submit case by case: the
            # first failure stops the sweep without running the rest of the
            # grid (the historical serial-executor contract).
            handles = []
            for call_spec, label in zip(call_specs, labels):
                handle = executor.submit(call_spec, label)
                if handle.error is not None:
                    raise handle.error
                handles.append(handle)
        else:
            handles = executor.map(call_specs, labels=labels)
        for case, handle in zip(cases, handles):
            handle.wait()
            if handle.ok:
                case.value = handle.result()
            else:
                error = handle.error or JobFailedError(f"job {handle.id} {handle.status.value}")
                if on_error == "raise":
                    raise error
                case.error = error
    finally:
        if owned:
            executor.close()

    return SweepResult(spec=spec, cases=cases)


def _resolve_legacy_executor(
    name: str,
    fn: Callable[..., Any] | str,
    max_workers: int | None,
    service: Any,
    endpoint: str | None,
) -> Executor:
    """The deprecated string-dispatch shim: registry resolution + fail-fast guards."""
    if name not in executor_names():
        raise ValueError(
            f"executor must be an Executor instance or one of {sorted(executor_names())}, "
            f"got {name!r}"
        )
    replacement = _EXECUTOR_REPLACEMENTS.get(name, f"resolve_executor({name!r})")
    warnings.warn(
        f"run_sweep(executor={name!r}) is deprecated; pass an Executor instance "
        f"instead, e.g. repro.core.execution.{replacement} "
        f"(or resolve_executor({name!r}, ...))",
        DeprecationWarning,
        stacklevel=3,
    )
    # Fail fast with the long-standing actionable messages before any pool
    # or connection is created.
    if name == "process":
        _require_picklable_case_fn(fn)
    if name == "remote":
        _require_wire_case_fn(fn)
        if service is None and endpoint is None:
            raise ValueError(
                "executor='remote' needs endpoint='http://host:port' (or service=client)"
            )
    return resolve_executor(
        name, max_workers=max_workers, service=service, endpoint=endpoint
    )


def sweep_table(
    result: SweepResult, value_label: str = "value"
) -> tuple[list[str], list[list[Any]]]:
    """(header, rows) view of a sweep, ready for :func:`repro.analysis.tables.format_table`."""
    header = list(result.spec.grid) + [value_label]
    rows = [
        [case.params[name] for name in result.spec.grid]
        + [case.value if case.ok else f"error: {case.error}"]
        for case in result.cases
    ]
    return header, rows
