"""Declarative experiment sweeps with parallel fan-out.

Every sweep in this codebase — block sensitivity (Fig. 3), threshold /
update-period analysis (Fig. 11), per-workload hardware evaluation
(Fig. 12), PE-scaling studies — has the same shape: a Cartesian grid of
parameter values, one evaluation function, one result per grid point.  This
module gives that shape a first-class API:

    spec = SweepSpec(name="pe-scaling", grid={"multipliers": [64, 128, 256]})
    result = run_sweep(lambda multipliers: simulate(multipliers), spec)
    result.values()  # in grid order, regardless of executor

Execution fans out over :mod:`concurrent.futures` (``"thread"`` by default —
the NumPy-heavy evaluation functions release the GIL for their array work —
or ``"process"`` / ``"serial"``).  Results always come back in deterministic
grid order; failures either propagate (``on_error="raise"``) or are captured
per-case (``on_error="capture"``) so one bad design point cannot sink a
thousand-point sweep.
"""

from __future__ import annotations

import itertools
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing-only; serve imports us at runtime
    from ..serve.client import RemoteEvaluationClient
    from ..serve.service import EvaluationService

EXECUTORS = ("thread", "process", "serial", "service", "remote")


def ensure_picklable(obj: Any, error_message: str) -> None:
    """Fail fast (and intelligibly) on payloads that cannot cross processes.

    ``ProcessPoolExecutor`` pickles work per submission; for lambdas,
    locally-defined functions or closures over live models that fails deep
    inside the pool with a bare ``PicklingError`` traceback.  Checking at the
    submission boundary turns it into an actionable error before any worker
    spawns — both the process sweep executor and the evaluation service's
    sampling jobs route through this guard.
    """
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise ValueError(f"{error_message} ({exc})") from exc


def _require_picklable_case_fn(fn: Callable[..., Any]) -> None:
    ensure_picklable(
        fn,
        f"the 'process' executor requires a picklable case function, "
        f"but {fn!r} cannot be pickled. Use a module-level function taking "
        "plain-data arguments, or executor='thread' for closures over live objects.",
    )


def _require_wire_case_fn(fn: Callable[..., Any] | str) -> None:
    """Remote sweeps name server-side functions; nothing callable crosses the wire."""
    if isinstance(fn, str):
        return
    from ..serve.specs import wire_function_name

    if wire_function_name(fn) is None:
        raise ValueError(
            f"executor='remote' submits *named* server-side functions over the "
            f"typed JSON wire, but {fn!r} is not a registered wire function. "
            "Register it with repro.serve.specs.register_wire_function (the "
            "server must import the registering module too), pass its "
            "registered name as a string, or use executor='service' to run "
            "the sweep in-process."
        )


@dataclass(frozen=True)
class SweepSpec:
    """A named Cartesian parameter grid.

    ``grid`` maps parameter names to the values they sweep over; the sweep
    enumerates the full cross product in row-major order (last parameter
    varies fastest), matching nested-loop reading order.
    """

    name: str
    grid: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("sweep grid must name at least one parameter")
        for param, values in self.grid.items():
            if len(values) == 0:
                raise ValueError(f"sweep parameter {param!r} has no values")

    @property
    def num_cases(self) -> int:
        size = 1
        for values in self.grid.values():
            size *= len(values)
        return size

    def cases(self) -> list[dict[str, Any]]:
        """All parameter assignments of the grid, in deterministic order."""
        names = list(self.grid)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.grid[name] for name in names))
        ]


@dataclass
class SweepCaseResult:
    """Outcome of one grid point."""

    index: int
    params: dict[str, Any]
    value: Any = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All grid-point outcomes of one sweep, in grid order."""

    spec: SweepSpec
    cases: list[SweepCaseResult] = field(default_factory=list)

    def values(self) -> list[Any]:
        """The per-case values, raising if any case failed."""
        for case in self.cases:
            if not case.ok:
                raise RuntimeError(
                    f"sweep {self.spec.name!r} case {case.params} failed"
                ) from case.error
        return [case.value for case in self.cases]

    def failures(self) -> list[SweepCaseResult]:
        return [case for case in self.cases if not case.ok]


def run_sweep(
    fn: Callable[..., Any],
    spec: SweepSpec | Mapping[str, Sequence[Any]],
    *,
    executor: str = "thread",
    max_workers: int | None = None,
    on_error: str = "raise",
    service: "EvaluationService | RemoteEvaluationClient | None" = None,
    endpoint: str | None = None,
) -> SweepResult:
    """Evaluate ``fn(**params)`` over every grid point of ``spec``.

    Parameters
    ----------
    fn:
        Evaluation function taking the grid's parameters as keyword
        arguments.  With ``executor="process"`` it must be picklable (a
        module-level function); with ``executor="remote"`` it must be a
        registered wire-function (or its name as a string), since remote
        jobs cross the wire as typed JSON specs, never as code.  Both are
        verified up front.
    spec:
        A :class:`SweepSpec`, or a bare ``{param: values}`` mapping which is
        wrapped into an anonymous spec.
    executor:
        ``"thread"`` (default), ``"process"``, ``"serial"``, ``"service"`` or
        ``"remote"``.  ``"service"`` submits every grid point as a job to an
        :class:`~repro.serve.service.EvaluationService`, so sweep cases share
        the service's worker pools, report cache and coalescing scheduler
        with any other traffic it is serving.  ``"remote"`` does the same
        against a ``repro serve`` HTTP endpoint through a
        :class:`~repro.serve.client.RemoteEvaluationClient`, fanning the
        sweep out to a server process shared by many clients.
    max_workers:
        Worker count for the parallel executors (library default if None).
    on_error:
        ``"raise"`` propagates the first failure; ``"capture"`` records the
        exception on the affected :class:`SweepCaseResult` and continues.
        Remote failures carry the server-side error message, not the
        original exception type.
    service:
        The evaluation service for ``executor="service"`` (an ephemeral one
        is created — and shut down — when omitted), or an existing
        :class:`RemoteEvaluationClient` for ``executor="remote"``.
    endpoint:
        Server base URL for ``executor="remote"`` (e.g.
        ``"http://127.0.0.1:8035"``); ignored when ``service`` is given.
    """
    if not isinstance(spec, SweepSpec):
        spec = SweepSpec(name="sweep", grid=dict(spec))
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
    if executor == "process":
        _require_picklable_case_fn(fn)
    if executor == "remote":
        _require_wire_case_fn(fn)
    if executor == "remote" and service is None and endpoint is None:
        raise ValueError("executor='remote' needs endpoint='http://host:port' (or service=client)")

    cases = [SweepCaseResult(index=i, params=params) for i, params in enumerate(spec.cases())]

    def evaluate(case: SweepCaseResult) -> SweepCaseResult:
        try:
            case.value = fn(**case.params)
        except Exception as exc:  # noqa: BLE001 - captured or re-raised below
            if on_error == "raise":
                raise
            case.error = exc
        return case

    if executor in ("service", "remote"):
        _run_sweep_on_service(fn, spec, cases, on_error, service, max_workers, executor, endpoint)
    elif executor == "serial" or len(cases) <= 1:
        for case in cases:
            evaluate(case)
    else:
        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=max_workers) as pool:
            if executor == "process":
                # Processes cannot mutate our local case objects; map the raw
                # params and graft values/errors back in order.
                futures = [pool.submit(fn, **case.params) for case in cases]
                for case, future in zip(cases, futures):
                    try:
                        case.value = future.result()
                    except Exception as exc:  # noqa: BLE001
                        if on_error == "raise":
                            raise
                        case.error = exc
            else:
                # map() preserves submission order, so results land in grid order.
                cases = list(pool.map(evaluate, cases))

    return SweepResult(spec=spec, cases=cases)


def _run_sweep_on_service(
    fn: Callable[..., Any],
    spec: SweepSpec,
    cases: list[SweepCaseResult],
    on_error: str,
    service: "EvaluationService | RemoteEvaluationClient | None",
    max_workers: int | None,
    executor: str = "service",
    endpoint: str | None = None,
) -> None:
    """Fan a sweep's cases out as jobs on an evaluation service (local or remote).

    Works for both executors because :class:`RemoteEvaluationClient` mirrors
    the service's submission surface and its jobs mirror ``Job``'s read side.
    """
    # Deferred imports: core must stay importable without the serve package.
    owned = service is None
    if service is not None:
        active: Any = service
    elif executor == "remote":
        from ..serve.client import RemoteEvaluationClient

        active = RemoteEvaluationClient(endpoint)
    else:
        from ..serve.service import EvaluationService

        active = EvaluationService(max_workers=max_workers)
    try:
        jobs = [
            active.submit_callable(
                fn, kwargs=case.params, label=f"{spec.name}[{case.index}]"
            )
            for case in cases
        ]
        for case, job in zip(cases, jobs):
            job.wait()
            if job.ok:
                case.value = job.result_value
            else:
                if on_error == "raise":
                    raise job.error
                case.error = job.error
    finally:
        if owned:
            active.close()


def sweep_table(
    result: SweepResult, value_label: str = "value"
) -> tuple[list[str], list[list[Any]]]:
    """(header, rows) view of a sweep, ready for :func:`repro.analysis.tables.format_table`."""
    header = list(result.spec.grid) + [value_label]
    rows = [
        [case.params[name] for name in result.spec.grid]
        + [case.value if case.ok else f"error: {case.error}"]
        for case in result.cases
    ]
    return header, rows
