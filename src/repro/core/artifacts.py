"""Disk-backed, content-addressed artifact store for evaluation results.

The in-memory :class:`~repro.core.report_cache.ReportCache` dies with the
process, so every new worker, CI job or CLI invocation re-simulates sweeps it
has already paid for.  This module adds the persistent tier: artifacts
(simulation reports, FID reference statistics, sparsity traces) are written
under a root directory, addressed by the SHA-256 of their input fingerprints,
and shared by every process pointing at the same directory.

Layout::

    <root>/<kind>/<key[:2]>/<key>.art

where ``kind`` namespaces artifact types (``"report"``, ``"fid_stats"``,
``"trace"``) and ``key`` is a hex digest produced by :meth:`ArtifactStore.key_for`
from the same fingerprints the report cache uses.

Robustness contract:

* **Atomic writes** — payloads land in a temporary file in the destination
  directory and are published with :func:`os.replace`, so concurrent writers
  and readers (threads *or* processes) never observe a half-written artifact;
  the last writer wins with identical content.
* **Corruption-tolerant reads** — every file carries a magic header and a
  SHA-256 checksum of its payload.  A truncated, garbled or foreign file
  fails verification, is quarantined (deleted) and reported as a miss, so the
  caller recomputes instead of crashing.

Set the ``REPRO_ARTIFACT_DIR`` environment variable to give the process-wide
report cache (and :class:`~repro.core.pipeline.SQDMPipeline`) a default
store; see :func:`default_artifact_store`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

#: File-format magic; bump the trailing version when the layout changes so old
#: processes treat new files as corrupt (recompute) rather than misparse them.
_MAGIC = b"RPRO-ART1\n"
_DIGEST_BYTES = 32
_SUFFIX = ".art"

#: Environment variable naming the default artifact directory.
ARTIFACT_DIR_ENV_VAR = "REPRO_ARTIFACT_DIR"


@dataclass
class ArtifactStoreStats:
    """Per-store counters, for hit-rate reporting and tests."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_discarded: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ArtifactStore:
    """Content-addressed persistent artifact storage under one root directory."""

    def __init__(self, root: str | os.PathLike[str]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = ArtifactStoreStats()
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactStore(root={str(self.root)!r})"

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def key_for(*parts: str) -> str:
        """Derive a content-address from fingerprint strings.

        Parts are joined with an unambiguous separator before hashing, so
        ``("ab", "c")`` and ``("a", "bc")`` produce distinct keys.
        """
        if not parts:
            raise ValueError("key_for needs at least one fingerprint part")
        digest = hashlib.sha256()
        for part in parts:
            encoded = str(part).encode()
            digest.update(len(encoded).to_bytes(8, "little"))
            digest.update(encoded)
        return digest.hexdigest()

    def path_for(self, kind: str, key: str) -> Path:
        """On-disk location of one artifact (which may not exist yet)."""
        if not kind or any(sep in kind for sep in ("/", "\\", "..")):
            raise ValueError(f"invalid artifact kind {kind!r}")
        if not key or any(sep in key for sep in ("/", "\\", "..")):
            raise ValueError(f"invalid artifact key {key!r}")
        return self.root / kind / key[:2] / f"{key}{_SUFFIX}"

    # -- read / write ---------------------------------------------------------

    def put(self, kind: str, key: str, obj: Any) -> Path:
        """Atomically persist one artifact; concurrent writers are safe."""
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self.stats.writes += 1
        return path

    def get(self, kind: str, key: str, default: Any = None) -> Any:
        """Load one artifact, returning ``default`` on absence *or* corruption.

        Any failure mode of the file — missing, truncated, bad magic, payload
        checksum mismatch, unpicklable bytes — counts as a miss; corrupt files
        are additionally deleted so they stop costing a read each lookup.
        """
        path = self.path_for(kind, key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.stats.misses += 1
            return default

        obj, ok = self._decode(blob)
        with self._lock:
            if ok:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                self.stats.corrupt_discarded += 1
        if not ok:
            try:
                path.unlink()
            except OSError:
                pass
            return default
        return obj

    @staticmethod
    def _decode(blob: bytes) -> tuple[Any, bool]:
        header_len = len(_MAGIC) + _DIGEST_BYTES
        if len(blob) < header_len or not blob.startswith(_MAGIC):
            return None, False
        digest = blob[len(_MAGIC) : header_len]
        payload = blob[header_len:]
        if hashlib.sha256(payload).digest() != digest:
            return None, False
        try:
            return pickle.loads(payload), True
        except Exception:  # noqa: BLE001 - any undecodable payload is corruption
            return None, False

    def contains(self, kind: str, key: str) -> bool:
        return self.path_for(kind, key).exists()

    def delete(self, kind: str, key: str) -> bool:
        try:
            self.path_for(kind, key).unlink()
            return True
        except OSError:
            return False

    # -- enumeration / maintenance --------------------------------------------

    def _artifact_paths(self, kind: str | None = None) -> Iterator[Path]:
        roots = [self.root / kind] if kind else [p for p in self.root.iterdir() if p.is_dir()]
        for kind_dir in roots:
            if kind_dir.is_dir():
                yield from sorted(kind_dir.glob(f"*/*{_SUFFIX}"))

    def kinds(self) -> list[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def keys(self, kind: str) -> list[str]:
        return [p.name[: -len(_SUFFIX)] for p in self._artifact_paths(kind)]

    def count(self, kind: str | None = None) -> int:
        return sum(1 for _ in self._artifact_paths(kind))

    def total_bytes(self, kind: str | None = None) -> int:
        total = 0
        for path in self._artifact_paths(kind):
            try:
                total += path.stat().st_size
            except OSError:
                # Concurrently quarantined/wiped by another process: skip it,
                # same as wipe() tolerates a vanished file.
                pass
        return total

    def wipe(self, kind: str | None = None) -> int:
        """Delete stored artifacts (all kinds, or one), returning the count removed."""
        removed = 0
        for path in list(self._artifact_paths(kind)):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def summary(self) -> dict[str, Any]:
        """Per-kind counts and sizes, for ``repro cache stats`` and JSON reports."""
        return {
            "root": str(self.root),
            "kinds": {
                kind: {
                    "artifacts": self.count(kind),
                    "bytes": self.total_bytes(kind),
                }
                for kind in self.kinds()
            },
            "total_artifacts": self.count(),
            "total_bytes": self.total_bytes(),
        }


#: One store instance per resolved root, so every consumer of the same
#: directory in a process shares hit/miss statistics.
_STORES_BY_ROOT: dict[str, ArtifactStore] = {}
_STORES_LOCK = threading.Lock()


def artifact_store_at(root: str | os.PathLike[str]) -> ArtifactStore:
    """The process-wide :class:`ArtifactStore` for a directory (created once)."""
    resolved = str(Path(root).expanduser().resolve())
    with _STORES_LOCK:
        store = _STORES_BY_ROOT.get(resolved)
        if store is None:
            store = _STORES_BY_ROOT[resolved] = ArtifactStore(resolved)
        return store


def default_artifact_store() -> ArtifactStore | None:
    """The store named by ``REPRO_ARTIFACT_DIR``, or None when persistence is off.

    Resolved on every call, so tests and CLI entry points may set the
    environment variable after import time.
    """
    root = os.environ.get(ARTIFACT_DIR_ENV_VAR, "").strip()
    if not root:
        return None
    return artifact_store_at(root)
