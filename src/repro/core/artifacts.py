"""Disk-backed, content-addressed artifact store for evaluation results.

The in-memory :class:`~repro.core.report_cache.ReportCache` dies with the
process, so every new worker, CI job or CLI invocation re-simulates sweeps it
has already paid for.  This module adds the persistent tier: artifacts
(simulation reports, FID reference statistics, sparsity traces) are written
under a root directory, addressed by the SHA-256 of their input fingerprints,
and shared by every process pointing at the same directory.

Layout::

    <root>/<kind>/<key[:2]>/<key>.art

where ``kind`` namespaces artifact types (``"report"``, ``"fid_stats"``,
``"trace"``) and ``key`` is a hex digest produced by :meth:`ArtifactStore.key_for`
from the same fingerprints the report cache uses.

Robustness contract:

* **Atomic writes** — payloads land in a temporary file in the destination
  directory and are published with :func:`os.replace`, so concurrent writers
  and readers (threads *or* processes) never observe a half-written artifact;
  the last writer wins with identical content.
* **Corruption-tolerant reads** — every file carries a magic header and a
  SHA-256 checksum of its payload.  A truncated, garbled or foreign file
  fails verification, is quarantined (deleted) and reported as a miss, so the
  caller recomputes instead of crashing.

* **Bounded disk usage** — a store may carry an eviction policy: a
  ``max_bytes`` size cap (LRU by last use) and/or a ``ttl_seconds`` age
  limit.  Last-use timestamps live in the store's *own metadata* (a tiny
  ``<key>.art.used`` stamp next to each artifact, refreshed on every hit),
  not in filesystem access times — ``relatime``/``noatime`` mounts freeze
  atime, which silently degraded LRU into FIFO.  Both policies run
  automatically after every write and on demand via
  :meth:`ArtifactStore.evict` (``repro cache evict`` from the command line),
  so a long-running evaluation server does not grow its artifact directory
  without bound.  Evicting an entry is always safe: the caches treat the
  missing artifact as a miss and recompute.

**Payload format** (version 2): artifacts are stored as schema-tagged JSON
documents (:mod:`repro.core.codec`), with NumPy arrays and bytes split out
into binary sidecar buffers after the JSON header — no base64 bloat, no
pickles on disk.  Only types with a registered wire schema (plus plain JSON
values, bytes and arrays) can be stored.  Old version-1 files, which held
pickles, are readable only through an explicit opt-in
(``legacy_pickle=True`` or ``REPRO_ARTIFACT_LEGACY_PICKLE=1``) and are
otherwise reported as misses; :meth:`ArtifactStore.migrate_legacy`
(``repro cache migrate``) rewrites a store in place so the opt-in can be
dropped.  A version-2 file whose schema *version* this process does not
know is likewise a miss (not corruption): newer writers never crash older
readers.

Set the ``REPRO_ARTIFACT_DIR`` environment variable to give the process-wide
report cache (and :class:`~repro.core.pipeline.SQDMPipeline`) a default
store; see :func:`default_artifact_store`.  ``REPRO_ARTIFACT_MAX_BYTES`` and
``REPRO_ARTIFACT_TTL`` (seconds) provide default eviction caps the same way.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from . import codec
from .telemetry import event_log, get_registry

# Process-wide disk-tier telemetry, aggregated across every store instance
# (per-store counts stay on each instance's ``ArtifactStoreStats``).
_READ_SECONDS = get_registry().histogram(
    "repro_artifact_read_seconds", "Artifact read latency (file read + decode + verify)."
)
_WRITE_SECONDS = get_registry().histogram(
    "repro_artifact_write_seconds", "Artifact write latency (encode + atomic publish)."
)
_HITS = get_registry().counter(
    "repro_artifact_hits_total", "Artifact reads that verified and decoded."
)
_MISSES = get_registry().counter(
    "repro_artifact_misses_total", "Artifact reads served as misses (absent, corrupt, legacy)."
)
_WRITES = get_registry().counter("repro_artifact_writes_total", "Artifacts persisted.")

#: File-format magics.  The trailing version is bumped when the layout
#: changes; readers reject versions they do not understand instead of
#: misparsing them.  Version 1 held pickles and is read-only, behind an
#: explicit opt-in.
_MAGIC = b"RPRO-ART2\n"
_MAGIC_V1 = b"RPRO-ART1\n"
_DIGEST_BYTES = 32
_HEADER_LEN_BYTES = 8
_SUFFIX = ".art"
_STAMP_SUFFIX = ".art.used"

#: Environment variable naming the default artifact directory.
ARTIFACT_DIR_ENV_VAR = "REPRO_ARTIFACT_DIR"

#: Environment variables providing default eviction caps for new stores.
MAX_BYTES_ENV_VAR = "REPRO_ARTIFACT_MAX_BYTES"
TTL_ENV_VAR = "REPRO_ARTIFACT_TTL"

#: Environment variable enabling the legacy pickle *read* path for stores
#: written before the typed wire schema (anything truthy enables it).
LEGACY_PICKLE_ENV_VAR = "REPRO_ARTIFACT_LEGACY_PICKLE"


def _env_number(name: str, convert: type) -> float | int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return convert(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be a {convert.__name__}, got {raw!r}"
        ) from None


@dataclass
class ArtifactStoreStats:
    """Per-store counters, for hit-rate reporting and tests.

    ``legacy_skipped`` counts reads of version-1 (pickled) artifacts that
    were refused because the legacy read path is not enabled; they are
    reported as misses but the files are left in place for migration.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_discarded: int = 0
    legacy_skipped: int = 0
    evicted: int = 0
    evicted_bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


@dataclass
class EvictionResult:
    """Outcome of one :meth:`ArtifactStore.evict` pass."""

    removed: int = 0
    reclaimed_bytes: int = 0
    remaining_artifacts: int = 0
    remaining_bytes: int = 0

    def summary(self) -> dict[str, Any]:
        return {
            "removed": self.removed,
            "reclaimed_bytes": self.reclaimed_bytes,
            "remaining_artifacts": self.remaining_artifacts,
            "remaining_bytes": self.remaining_bytes,
        }


@dataclass
class MigrationResult:
    """Outcome of one :meth:`ArtifactStore.migrate_legacy` pass."""

    migrated: int = 0
    already_current: int = 0
    failed: int = 0

    def summary(self) -> dict[str, Any]:
        return {
            "migrated": self.migrated,
            "already_current": self.already_current,
            "failed": self.failed,
        }


class ArtifactStore:
    """Content-addressed persistent artifact storage under one root directory.

    Parameters
    ----------
    max_bytes:
        Size cap for the whole store.  When set, every write triggers an
        eviction pass that removes least-recently-used artifacts until the
        store fits (defaults to ``REPRO_ARTIFACT_MAX_BYTES`` when unset).
    ttl_seconds:
        Age limit: artifacts not read or written for this long are evicted on
        the next pass (defaults to ``REPRO_ARTIFACT_TTL`` when unset).
    legacy_pickle:
        Opt-in *read* support for version-1 artifacts, which stored pickles
        (defaults to the ``REPRO_ARTIFACT_LEGACY_PICKLE`` environment
        variable).  Writes always use the typed JSON format; enable this
        only for stores written by older code, ideally just long enough to
        run :meth:`migrate_legacy`.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        max_bytes: int | None = None,
        ttl_seconds: float | None = None,
        legacy_pickle: bool | None = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            max_bytes = _env_number(MAX_BYTES_ENV_VAR, int)
        if ttl_seconds is None:
            ttl_seconds = _env_number(TTL_ENV_VAR, float)
        if legacy_pickle is None:
            legacy_pickle = os.environ.get(LEGACY_PICKLE_ENV_VAR, "").strip().lower() in (
                "1",
                "true",
                "yes",
                "on",
            )
        self.legacy_pickle = bool(legacy_pickle)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for no size cap)")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None for no TTL)")
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.stats = ArtifactStoreStats()
        self._lock = threading.Lock()
        # Write-path eviction bookkeeping: a running byte total (exact for
        # this process, refreshed by every full evict() scan) gates the size
        # cap, and a timestamp throttles TTL passes — so writes stay O(1)
        # instead of re-scanning the whole store each time.
        self._approx_bytes: int | None = None  #: guarded by _lock
        self._last_ttl_evict = 0.0  #: guarded by _lock (monotonic seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactStore(root={str(self.root)!r})"

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def key_for(*parts: str) -> str:
        """Derive a content-address from fingerprint strings.

        Parts are joined with an unambiguous separator before hashing, so
        ``("ab", "c")`` and ``("a", "bc")`` produce distinct keys.
        """
        if not parts:
            raise ValueError("key_for needs at least one fingerprint part")
        digest = hashlib.sha256()
        for part in parts:
            encoded = str(part).encode()
            digest.update(len(encoded).to_bytes(8, "little"))
            digest.update(encoded)
        return digest.hexdigest()

    def path_for(self, kind: str, key: str) -> Path:
        """On-disk location of one artifact (which may not exist yet)."""
        if not kind or any(sep in kind for sep in ("/", "\\", "..")):
            raise ValueError(f"invalid artifact kind {kind!r}")
        if not key or any(sep in key for sep in ("/", "\\", "..")):
            raise ValueError(f"invalid artifact key {key!r}")
        return self.root / kind / key[:2] / f"{key}{_SUFFIX}"

    # -- read / write ---------------------------------------------------------

    @staticmethod
    def _encode_payload(obj: Any) -> bytes:
        """Serialize one artifact: JSON header + concatenated binary sidecars.

        Layout: an 8-byte little-endian header length, the UTF-8 JSON header
        ``{"doc": <schema envelope>, "buffers": [len, ...]}``, then the raw
        sidecar buffers back to back.  Raises
        :class:`~repro.core.codec.SchemaError` for objects without a
        registered wire schema — the store never falls back to pickling.
        """
        buffers: list[bytes] = []
        doc = codec.encode(obj, arrays=buffers)
        header = json.dumps(
            {"doc": doc, "buffers": [len(buffer) for buffer in buffers]},
            sort_keys=True,
        ).encode("utf-8")
        return b"".join(
            [len(header).to_bytes(_HEADER_LEN_BYTES, "little"), header, *buffers]
        )

    @staticmethod
    def _decode_payload(payload: bytes) -> Any:
        """Inverse of :meth:`_encode_payload` (raises on any malformation)."""
        if len(payload) < _HEADER_LEN_BYTES:
            raise ValueError("artifact payload shorter than its header length field")
        header_len = int.from_bytes(payload[:_HEADER_LEN_BYTES], "little")
        header_end = _HEADER_LEN_BYTES + header_len
        if header_end > len(payload):
            raise ValueError("artifact header length exceeds payload")
        header = json.loads(payload[_HEADER_LEN_BYTES:header_end].decode("utf-8"))
        buffers: list[bytes] = []
        offset = header_end
        for length in header["buffers"]:
            buffers.append(payload[offset : offset + int(length)])
            offset += int(length)
        if offset != len(payload):
            raise ValueError("artifact sidecar buffers do not span the payload")
        return codec.decode(header["doc"], buffers=buffers)

    def put(self, kind: str, key: str, obj: Any) -> Path:
        """Atomically persist one artifact; concurrent writers are safe.

        The object must carry a registered wire schema (or be plain JSON
        data / bytes / arrays); :class:`~repro.core.codec.SchemaError`
        propagates otherwise so callers never silently store something no
        other process can read.
        """
        began = time.monotonic()
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self._encode_payload(obj)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._write_stamp(path)
        with self._lock:
            self.stats.writes += 1
        _WRITES.inc()
        _WRITE_SECONDS.observe(time.monotonic() - began)
        if self._should_evict_after_write(len(blob)):
            self.evict()
        return path

    def _should_evict_after_write(self, written_bytes: int) -> bool:
        """Cheap gate for the automatic post-write eviction pass.

        The size cap triggers only once the running total crosses
        ``max_bytes`` (another process's writes are invisible to this total,
        but every :meth:`evict` re-measures exactly), and TTL passes run at
        most every ``ttl/4`` seconds (capped at a minute) so a write burst
        does not rescan the store each time.
        """
        if self.max_bytes is None and self.ttl_seconds is None:
            return False
        # Rate-limiter arithmetic must not jump with NTP steps: an hour-long
        # wall-clock step would stall (or double-fire) the TTL pass for an
        # hour.  Only the on-disk stamp comparisons in evict() use wall time.
        now = time.monotonic()
        with self._lock:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += written_bytes
            over_cap = self.max_bytes is not None and self._approx_bytes > self.max_bytes
            ttl_due = self.ttl_seconds is not None and (
                now - self._last_ttl_evict >= min(self.ttl_seconds / 4, 60.0)
            )
            if ttl_due:
                self._last_ttl_evict = now
        return over_cap or ttl_due

    def get(self, kind: str, key: str, default: Any = None) -> Any:
        """Load one artifact, returning ``default`` on absence *or* corruption.

        Any failure mode of the file — missing, truncated, bad magic, payload
        checksum mismatch, undecodable bytes — counts as a miss; corrupt
        files are additionally deleted so they stop costing a read each
        lookup.  Two failure modes are misses but *not* corruption (the file
        is left in place): a version-1 pickled artifact without the legacy
        opt-in, and a valid file whose schema version this process does not
        know (written by newer code).
        """
        began = time.monotonic()
        path = self.path_for(kind, key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.stats.misses += 1
            _MISSES.inc()
            _READ_SECONDS.observe(time.monotonic() - began)
            return default

        obj, status = self._decode(blob)
        with self._lock:
            if status == "ok":
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                if status == "corrupt":
                    self.stats.corrupt_discarded += 1
                elif status == "legacy":
                    self.stats.legacy_skipped += 1
        (_HITS if status == "ok" else _MISSES).inc()
        _READ_SECONDS.observe(time.monotonic() - began)
        if status == "corrupt":
            try:
                path.unlink()
            except OSError:
                pass
        if status != "ok":
            return default
        # Record the hit in the store's own last-use metadata so LRU eviction
        # keeps working on relatime/noatime mounts where atime never moves.
        self._write_stamp(path)
        return obj

    def _decode(self, blob: bytes) -> tuple[Any, str]:
        """Decode one artifact file; returns ``(obj, status)``.

        ``status`` is ``"ok"``, ``"corrupt"`` (checksum/format failure —
        quarantine), ``"legacy"`` (valid v1 pickle, legacy reads disabled) or
        ``"unknown-schema"`` (valid v2 file, unregistered schema version) —
        everything but ``"ok"`` is served as a miss.
        """
        legacy = blob.startswith(_MAGIC_V1)
        magic = _MAGIC_V1 if legacy else _MAGIC
        header_len = len(magic) + _DIGEST_BYTES
        if len(blob) < header_len or not blob.startswith(magic):
            return None, "corrupt"
        digest = blob[len(magic) : header_len]
        payload = blob[header_len:]
        if hashlib.sha256(payload).digest() != digest:
            return None, "corrupt"
        if legacy:
            if not self.legacy_pickle:
                return None, "legacy"
            try:
                return pickle.loads(payload), "ok"
            except Exception:  # noqa: BLE001 - any unpicklable payload is corruption
                return None, "corrupt"
        try:
            return self._decode_payload(payload), "ok"
        except codec.UnknownSchemaError:
            return None, "unknown-schema"
        except Exception:  # noqa: BLE001 - any undecodable payload is corruption
            return None, "corrupt"

    def contains(self, kind: str, key: str) -> bool:
        return self.path_for(kind, key).exists()

    def delete(self, kind: str, key: str) -> bool:
        path = self.path_for(kind, key)
        self._remove_stamp(path)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    # -- last-use metadata ------------------------------------------------------

    @staticmethod
    def _stamp_path(path: Path) -> Path:
        return path.with_name(path.stem + _STAMP_SUFFIX)

    def _write_stamp(self, path: Path, when: float | None = None) -> None:
        """Record an artifact's last use in its stamp file's mtime.

        The stamp is an empty marker file; its *modification* time carries
        the timestamp.  Explicit :func:`os.utime` calls work on any mount —
        ``relatime``/``noatime`` only suppress implicit read-driven atime
        updates — so the hot refresh path is one syscall on an existing
        stamp, with the atomic create reserved for the first use.
        Best-effort: eviction falls back to the artifact's own mtime.
        """
        stamp = self._stamp_path(path)
        times = None if when is None else (when, when)
        try:
            os.utime(stamp, times)
            return
        except OSError:
            pass
        try:
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".used-", suffix=".tmp")
            os.close(fd)
            if times is not None:
                os.utime(tmp_name, times)
            os.replace(tmp_name, stamp)
        except OSError:
            pass

    @staticmethod
    def _remove_stamp(path: Path) -> None:
        try:
            ArtifactStore._stamp_path(path).unlink()
        except OSError:
            pass

    def _last_used(self, path: Path, stat: os.stat_result) -> float:
        try:
            return self._stamp_path(path).stat().st_mtime
        except OSError:
            # No stamp: fall back to the write time, which is correct for
            # artifacts never read since this metadata landed.
            return max(stat.st_atime, stat.st_mtime)

    def touch(self, kind: str, key: str, when: float | None = None) -> None:
        """Mark one artifact as used now (or at ``when``), for LRU eviction."""
        self._write_stamp(self.path_for(kind, key), when)

    # -- enumeration / maintenance --------------------------------------------

    def _artifact_paths(self, kind: str | None = None) -> Iterator[Path]:
        roots = [self.root / kind] if kind else [p for p in self.root.iterdir() if p.is_dir()]
        for kind_dir in roots:
            if kind_dir.is_dir():
                yield from sorted(kind_dir.glob(f"*/*{_SUFFIX}"))

    def kinds(self) -> list[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def keys(self, kind: str) -> list[str]:
        return [p.name[: -len(_SUFFIX)] for p in self._artifact_paths(kind)]

    def count(self, kind: str | None = None) -> int:
        return sum(1 for _ in self._artifact_paths(kind))

    def total_bytes(self, kind: str | None = None) -> int:
        total = 0
        for path in self._artifact_paths(kind):
            try:
                total += path.stat().st_size
            except OSError:
                # Concurrently quarantined/wiped by another process: skip it,
                # same as wipe() tolerates a vanished file.
                pass
        return total

    def wipe(self, kind: str | None = None) -> int:
        """Delete stored artifacts (all kinds, or one), returning the count removed."""
        removed = 0
        for path in list(self._artifact_paths(kind)):
            self._remove_stamp(path)
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def migrate_legacy(self) -> MigrationResult:
        """Rewrite version-1 (pickled) artifacts into the typed JSON format.

        Unpickling is inherent to migration, so this method reads v1 files
        regardless of the ``legacy_pickle`` setting — run it only on stores
        this codebase wrote.  Artifacts that fail to unpickle or that hold
        types without a registered wire schema are counted as ``failed`` and
        left untouched.  After a clean migration the legacy opt-in can be
        dropped and a warm server restart is served entirely from the store.
        """
        result = MigrationResult()
        for path in list(self._artifact_paths()):
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            if blob.startswith(_MAGIC):
                result.already_current += 1
                continue
            header_len = len(_MAGIC_V1) + _DIGEST_BYTES
            if (
                len(blob) < header_len
                or not blob.startswith(_MAGIC_V1)
                or hashlib.sha256(blob[header_len:]).digest() != blob[len(_MAGIC_V1) : header_len]
            ):
                result.failed += 1
                continue
            kind = path.parent.parent.name
            key = path.name[: -len(_SUFFIX)]
            # Preserve the artifact's last-use ordering across the rewrite
            # (put() would otherwise stamp it as freshly used).
            last_used = self._last_used(path, path.stat())
            try:
                obj = pickle.loads(blob[header_len:])
                self.put(kind, key, obj)
            except Exception as exc:  # noqa: BLE001 - unpicklable or schema-less artifact
                event_log().emit(
                    "artifacts.migrate_failed", level="warning", kind=kind, key=key, error=repr(exc)
                )
                result.failed += 1
                continue
            self._write_stamp(path, last_used)
            result.migrated += 1
        return result

    def evict(
        self,
        max_bytes: int | None = None,
        ttl_seconds: float | None = None,
    ) -> EvictionResult:
        """Apply the eviction policy now, returning what was removed.

        TTL expiry runs first (artifacts unused for longer than
        ``ttl_seconds``), then the size cap: least-recently-used artifacts are
        removed until the store holds at most ``max_bytes``.  Arguments
        default to the store's configured policy; passing explicit values
        evicts to tighter (or looser) bounds for one pass only.

        Safe under concurrent readers and writers, in this process or
        another: a file deleted under us is skipped, and evicting an artifact
        another worker still wants only costs that worker a recompute.
        """
        if max_bytes is None:
            max_bytes = self.max_bytes
        if ttl_seconds is None:
            ttl_seconds = self.ttl_seconds

        entries: list[tuple[float, int, Path]] = []
        for path in self._artifact_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((self._last_used(path, stat), stat.st_size, path))

        result = EvictionResult()
        # Stamp mtimes are wall-clock by nature (written by any process that
        # touches the store), so the TTL comparison must be wall-clock too.
        now = time.time()  # repro: allow[REP002] cross-process stamp mtimes are wall-clock

        def remove(entry: tuple[float, int, Path]) -> bool:
            _, size, path = entry
            try:
                path.unlink()
            except OSError:
                return False  # already evicted by a concurrent pass
            self._remove_stamp(path)
            result.removed += 1
            result.reclaimed_bytes += size
            return True

        if ttl_seconds is not None:
            survivors = []
            for entry in entries:
                if now - entry[0] > ttl_seconds:
                    remove(entry)
                else:
                    survivors.append(entry)
            entries = survivors

        if max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            for entry in sorted(entries):  # oldest last-use first
                if total <= max_bytes:
                    break
                if remove(entry):
                    total -= entry[1]
                    entries.remove(entry)

        result.remaining_artifacts = len(entries)
        result.remaining_bytes = sum(size for _, size, _ in entries)
        with self._lock:
            self.stats.evicted += result.removed
            self.stats.evicted_bytes += result.reclaimed_bytes
            self._approx_bytes = result.remaining_bytes
        return result

    def summary(self) -> dict[str, Any]:
        """Per-kind counts and sizes, for ``repro cache stats`` and JSON reports."""
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "ttl_seconds": self.ttl_seconds,
            "evicted": self.stats.evicted,
            "kinds": {
                kind: {
                    "artifacts": self.count(kind),
                    "bytes": self.total_bytes(kind),
                }
                for kind in self.kinds()
            },
            "total_artifacts": self.count(),
            "total_bytes": self.total_bytes(),
        }


#: One store instance per resolved root, so every consumer of the same
#: directory in a process shares hit/miss statistics.
_STORES_BY_ROOT: dict[str, ArtifactStore] = {}
_STORES_LOCK = threading.Lock()


def artifact_store_at(
    root: str | os.PathLike[str],
    max_bytes: int | None = None,
    ttl_seconds: float | None = None,
    legacy_pickle: bool | None = None,
) -> ArtifactStore:
    """The process-wide :class:`ArtifactStore` for a directory (created once).

    Explicit eviction caps (and the legacy-pickle read opt-in) apply when the
    store is first created for the directory and reconfigure the shared
    instance on later calls.
    """
    resolved = str(Path(root).expanduser().resolve())
    with _STORES_LOCK:
        store = _STORES_BY_ROOT.get(resolved)
        if store is None:
            store = _STORES_BY_ROOT[resolved] = ArtifactStore(
                resolved,
                max_bytes=max_bytes,
                ttl_seconds=ttl_seconds,
                legacy_pickle=legacy_pickle,
            )
        else:
            if max_bytes is not None:
                store.max_bytes = max_bytes
            if ttl_seconds is not None:
                store.ttl_seconds = ttl_seconds
            if legacy_pickle is not None:
                store.legacy_pickle = legacy_pickle
        return store


def default_artifact_store() -> ArtifactStore | None:
    """The store named by ``REPRO_ARTIFACT_DIR``, or None when persistence is off.

    Resolved on every call, so tests and CLI entry points may set the
    environment variable after import time.
    """
    root = os.environ.get(ARTIFACT_DIR_ENV_VAR, "").strip()
    if not root:
        return None
    return artifact_store_at(root)
