"""Benchmark harness behind ``repro bench``: the repo's performance trajectory.

Performance work is only trustworthy when it is measured the same way every
time, so this module pins down *what* is measured and ``BENCH_<n>.json``
files committed at the repo root record *how fast it was* when each PR
landed.  Three measurements cover the stack:

``sim_entries_per_sec``
    Raw kernel throughput: flattened (config, trace, step, layer) entries
    simulated per second by one cross-config
    :func:`~repro.accelerator.backends.vectorized.run_config_traces_columnar`
    pass.  The kernel returns a columnar batch, so this is the cost of a
    sweep whose consumer reads array aggregates — no report objects built.
``sweep_wall_clock_s`` / ``per_config_sweep_wall_clock_s``
    Wall-clock of a 16-config x 8-trace design-space sweep through the
    cross-config kernel vs the PR-2 per-config ``run_traces`` loop; their
    ratio is ``cross_config_speedup``.
``report_assembly_entries_per_sec``
    Materialization throughput: entries per second turned from columnar
    arrays into ``SimulationReport`` object trees (a fresh batch per repeat,
    so memoization cannot flatter the number).
``sweep_peak_alloc_mb``
    tracemalloc peak of one columnar sweep at the bench shape — the
    allocation footprint of keeping results columnar.  Measured outside the
    timed sections (tracemalloc slows allocation), observability only.
``service_jobs_per_sec``
    End-to-end job throughput of an :class:`EvaluationService` fed distinct
    simulation jobs (cold cache), including queueing, coalescing and
    completion overhead.  The same run records per-job submitted->finished
    latency percentiles (``service_job_latency_p50_s`` / ``_p95_s``) from
    each job's monotonic trace — observability fields, not gated.

Absolute timings are machine-dependent, so the regression gate compares
*calibrated* values: every run also times a fixed NumPy reduction
(``calibration_score``) and the gated metrics are normalized by it
(``sim_entries_per_calib``, ``sweep_wall_clock_calib``).  A faster or slower
CI machine moves the raw numbers and the calibration score together, leaving
the normalized values comparable across hosts to first order.
"""

from __future__ import annotations

import json
import platform
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..accelerator.config import AcceleratorConfig
from ..accelerator.simulator import AcceleratorSimulator, WorkloadTrace
from ..accelerator.workload import random_workload

#: Schema version of the BENCH_<n>.json payload.
BENCH_SCHEMA_VERSION = 1

#: Metrics the CI gate enforces, with the direction that counts as better.
#: Calibrated metrics only — raw wall-clocks are recorded for humans.
GATED_METRICS: dict[str, str] = {
    "sim_entries_per_calib": "higher",
    "sweep_wall_clock_calib": "lower",
}

#: Default allowed bad-direction drift before the gate fails.
DEFAULT_TOLERANCE = 0.15


@dataclass
class BenchWorkload:
    """Size of the synthetic design-space sweep being timed."""

    num_configs: int = 16
    num_traces: int = 8
    steps: int = 2
    layers: int = 3
    channels: int = 32
    repeats: int = 3
    seed: int = 0

    @classmethod
    def quick(cls) -> "BenchWorkload":
        return cls()

    @classmethod
    def full(cls) -> "BenchWorkload":
        return cls(steps=4, layers=6, channels=64, repeats=5)

    @property
    def entries(self) -> int:
        return self.num_configs * self.num_traces * self.steps * self.layers

    def as_dict(self) -> dict[str, int]:
        return {
            "num_configs": self.num_configs,
            "num_traces": self.num_traces,
            "steps": self.steps,
            "layers": self.layers,
            "channels": self.channels,
            "repeats": self.repeats,
            "seed": self.seed,
        }


@dataclass
class RegressionFinding:
    """One gated metric that drifted in the bad direction past tolerance."""

    metric: str
    direction: str
    baseline: float
    current: float
    change: float

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.current:.4g} vs baseline {self.baseline:.4g} "
            f"({self.change:+.1%}, '{self.direction}' is better)"
        )


@dataclass
class BenchResult:
    """One full benchmark run, ready to serialize as ``BENCH_<n>.json``."""

    metrics: dict[str, float]
    workload: dict[str, int]
    quick: bool
    environment: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "bench_schema_version": BENCH_SCHEMA_VERSION,
            "quick": self.quick,
            "workload": self.workload,
            "metrics": self.metrics,
            "environment": self.environment,
        }


def _min_runtime(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-N wall-clock: the minimum is the least noise-contaminated sample."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibration_score(repeats: int = 3) -> float:
    """Throughput of a fixed NumPy working set, as a machine-speed proxy.

    Dimensionless by convention (1.0 ~ one loop of the reference reduction
    per 10 ms); used to normalize the gated metrics so the committed
    baseline transfers across machines.
    """
    rng = np.random.default_rng(0)
    data = rng.random((256, 4096))

    def work() -> None:
        for _ in range(8):
            np.sort(data, axis=1)[:, ::-1].cumsum(axis=1).max(axis=1).sum()

    return 0.01 / _min_runtime(work, repeats)


def bench_grid(workload: BenchWorkload) -> list[AcceleratorConfig]:
    """A deterministic 16-point configuration grid exercising both datapaths."""
    configs = []
    for num_dpe in (1, 2):
        for num_spe in (1, 2):
            for threshold in (0.3, 0.5):
                for period in (1, 2):
                    configs.append(
                        AcceleratorConfig(
                            name=f"bench-d{num_dpe}s{num_spe}t{threshold}p{period}",
                            num_dpe=num_dpe,
                            num_spe=num_spe,
                            sparsity_threshold=threshold,
                            sparsity_update_period=period,
                        )
                    )
    return configs[: workload.num_configs]


def bench_traces(workload: BenchWorkload) -> list[WorkloadTrace]:
    """Deterministic synthetic traces shared by every configuration."""
    rng = np.random.default_rng(workload.seed)
    traces: list[WorkloadTrace] = []
    for trace_idx in range(workload.num_traces):
        templates = [
            random_workload(
                in_channels=workload.channels,
                out_channels=workload.channels,
                spatial=8,
                seed=int(rng.integers(0, 2**31)),
                name=f"layer{layer}",
            )
            for layer in range(workload.layers)
        ]
        traces.append(
            [
                [
                    template.replace(
                        channel_sparsity=rng.uniform(0.0, 1.0, size=template.in_channels)
                    )
                    for template in templates
                ]
                for _ in range(workload.steps)
            ]
        )
    return traces


def _time_sweeps(
    configs: list[AcceleratorConfig],
    traces: list[WorkloadTrace],
    repeats: int,
) -> tuple[float, float]:
    """(cross-config, per-config) wall-clock of the same sweep, best of N.

    The cross-config path times the columnar kernel alone — since PR 9 a
    sweep's results stay columnar until someone indexes a report, so the
    kernel pass *is* the end-to-end sweep cost for aggregate consumers.
    """
    entries = [(config, traces) for config in configs]
    simulator = AcceleratorSimulator(configs[0], backend="vectorized")

    def cross_config() -> None:
        simulator.run_config_traces_columnar(entries)

    def per_config() -> None:
        for config in configs:
            AcceleratorSimulator(config, backend="vectorized").run_traces(traces)

    return _min_runtime(cross_config, repeats), _min_runtime(per_config, repeats)


def _time_assembly(
    configs: list[AcceleratorConfig],
    traces: list[WorkloadTrace],
    repeats: int,
) -> float:
    """Best-of-N wall-clock of materializing every report from a columnar batch.

    Each repeat materializes a *fresh* batch (built outside the timed
    region): ``ColumnarReportBatch`` memoizes per-trace reports, so re-timing
    one batch would measure dictionary lookups, not assembly.
    """
    entries = [(config, traces) for config in configs]
    simulator = AcceleratorSimulator(configs[0], backend="vectorized")
    best = float("inf")
    for _ in range(max(1, repeats)):
        batch = simulator.run_config_traces_columnar(entries)
        start = time.perf_counter()
        batch.report_lists()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep_peak_alloc_mb(
    configs: list[AcceleratorConfig], traces: list[WorkloadTrace]
) -> float:
    """tracemalloc peak (MiB) of one columnar sweep, cold start to batch."""
    entries = [(config, traces) for config in configs]
    simulator = AcceleratorSimulator(configs[0], backend="vectorized")
    tracemalloc.start()
    try:
        simulator.run_config_traces_columnar(entries)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024.0 * 1024.0)


def _time_service(
    configs: list[AcceleratorConfig], traces: list[WorkloadTrace]
) -> tuple[float, float, float]:
    """(jobs/sec, p50 latency, p95 latency) of an EvaluationService fed one
    cold-cache job per config.  Latency is per-job submitted->finished time
    from the job's monotonic trace, so it includes queueing and coalescing."""
    from ..serve.service import EvaluationService
    from .report_cache import ReportCache

    jobs_submitted = len(configs)
    start = time.perf_counter()
    with EvaluationService(cache=ReportCache(max_entries=1024)) as service:
        jobs = [service.submit_simulation(config, traces[0]) for config in configs]
        for job in jobs:
            job.result()
        latencies = sorted(
            elapsed
            for job in jobs
            if (elapsed := job.trace.elapsed("submitted", "finished")) is not None
        )
    elapsed = time.perf_counter() - start

    def percentile(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, round(q * (len(latencies) - 1)))]

    jobs_per_sec = jobs_submitted / elapsed if elapsed > 0 else float("inf")
    return jobs_per_sec, percentile(0.50), percentile(0.95)


def run_bench(quick: bool = True, seed: int = 0) -> BenchResult:
    """Run the full measurement suite and assemble a :class:`BenchResult`."""
    workload = BenchWorkload.quick() if quick else BenchWorkload.full()
    workload.seed = seed
    configs = bench_grid(workload)
    traces = bench_traces(workload)

    calibration = calibration_score(workload.repeats)
    cross_s, per_config_s = _time_sweeps(configs, traces, workload.repeats)
    entries_per_sec = workload.entries / cross_s if cross_s > 0 else float("inf")
    assembly_s = _time_assembly(configs, traces, workload.repeats)
    assembly_per_sec = workload.entries / assembly_s if assembly_s > 0 else float("inf")
    peak_alloc_mb = _sweep_peak_alloc_mb(configs, traces)
    jobs_per_sec, latency_p50, latency_p95 = _time_service(configs, traces)

    metrics = {
        "calibration_score": calibration,
        "sim_entries_per_sec": entries_per_sec,
        "sweep_wall_clock_s": cross_s,
        "per_config_sweep_wall_clock_s": per_config_s,
        "cross_config_speedup": per_config_s / cross_s if cross_s > 0 else float("inf"),
        "report_assembly_entries_per_sec": assembly_per_sec,
        "sweep_peak_alloc_mb": peak_alloc_mb,
        "service_jobs_per_sec": jobs_per_sec,
        "service_job_latency_p50_s": latency_p50,
        "service_job_latency_p95_s": latency_p95,
        "sim_entries_per_calib": entries_per_sec / calibration,
        "sweep_wall_clock_calib": cross_s * calibration,
    }
    environment = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    return BenchResult(
        metrics=metrics, workload=workload.as_dict(), quick=quick, environment=environment
    )


def compare_to_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[RegressionFinding]:
    """Gate a run against a committed baseline; only bad-direction drift fails.

    Improvements of any size pass; a gated metric missing from either side is
    skipped (new metrics phase in without failing old baselines).
    """
    findings = []
    for metric, direction in GATED_METRICS.items():
        base = baseline.get("metrics", {}).get(metric)
        now = current.get("metrics", {}).get(metric)
        if base is None or now is None or base <= 0:
            continue
        change = (now - base) / base
        regressed = change < -tolerance if direction == "higher" else change > tolerance
        if regressed:
            findings.append(
                RegressionFinding(
                    metric=metric,
                    direction=direction,
                    baseline=float(base),
                    current=float(now),
                    change=change,
                )
            )
    return findings


def load_baseline(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
