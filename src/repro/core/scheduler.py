"""Temporal sparsity update scheduling (Sec. IV-C, Fig. 11).

The per-channel dense/sparse classification must be refreshed as sampling
progresses because the sparsity pattern drifts across time steps.  The paper
analyses two knobs:

* the **sparsity threshold** separating dense from sparse channels — chosen
  at 30% to balance the dense and sparse PEs' execution time while keeping
  the sparse-group average sparsity around 70%; and
* the **update period** — how many time steps a classification is reused.
  More frequent updates track the drifting pattern better and therefore give
  higher speed-up; since the detector's cost is negligible and hidden behind
  compute, the paper updates every time step.

This module provides the sweep utilities behind those two analyses.  They
operate on accelerator workload traces (see
:func:`repro.core.sparsity.trace_to_workloads`) so they can be driven either
by real model traces or by synthetic ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..accelerator.config import AcceleratorConfig, dense_baseline_config, sqdm_config
from ..accelerator.detector import classify_channels
from ..accelerator.simulator import AcceleratorSimulator, WorkloadTrace, safe_speedup


@dataclass
class ThresholdAnalysisPoint:
    """Metrics of one candidate sparsity threshold (Fig. 11, left)."""

    threshold: float
    sparse_fraction: float
    sparse_group_sparsity: float
    dense_group_sparsity: float
    load_imbalance: float
    speedup: float


@dataclass
class UpdatePeriodPoint:
    """Speed-up achieved with one sparsity-update period (Fig. 11, right)."""

    update_period: int
    speedup: float
    updates_performed: int


def analyze_threshold(
    trace: WorkloadTrace,
    thresholds: list[float] | None = None,
    base_config: AcceleratorConfig | None = None,
) -> list[ThresholdAnalysisPoint]:
    """Sweep the dense/sparse threshold and report balance and speed-up.

    For each threshold the function reports the fraction of channels routed
    to the sparse PE, the average sparsity inside the sparse group (the
    paper reports ~70% at the chosen 30% threshold), the dense/sparse load
    imbalance, and the end-to-end speed-up versus the dense 2-DPE baseline.
    """
    if thresholds is None:
        thresholds = [round(t, 2) for t in np.arange(0.1, 0.95, 0.1)]
    base_config = base_config or sqdm_config()
    baseline_report = AcceleratorSimulator(
        dense_baseline_config(pe=base_config.pe)
    ).run_trace(trace)

    points = []
    for threshold in thresholds:
        config = base_config.with_threshold(float(threshold))
        report = AcceleratorSimulator(config).run_trace(trace)
        sparse_fractions = []
        sparse_sparsities = []
        dense_sparsities = []
        for step in trace:
            for workload in step:
                classification = classify_channels(workload.channel_sparsity, threshold)
                sparse_fractions.append(classification.sparse_fraction)
                sparse_sparsities.append(classification.sparse_group_sparsity)
                dense_sparsities.append(classification.dense_group_sparsity)
        points.append(
            ThresholdAnalysisPoint(
                threshold=float(threshold),
                sparse_fraction=float(np.mean(sparse_fractions)) if sparse_fractions else 0.0,
                sparse_group_sparsity=(
                    float(np.mean(sparse_sparsities)) if sparse_sparsities else 0.0
                ),
                dense_group_sparsity=float(np.mean(dense_sparsities)) if dense_sparsities else 0.0,
                load_imbalance=report.average_load_imbalance(),
                speedup=safe_speedup(baseline_report.total_cycles, report.total_cycles),
            )
        )
    return points


def best_threshold(points: list[ThresholdAnalysisPoint]) -> ThresholdAnalysisPoint:
    """The threshold with the highest speed-up (ties broken by lower imbalance)."""
    if not points:
        raise ValueError("no threshold points to choose from")
    return max(points, key=lambda p: (p.speedup, -p.load_imbalance))


def analyze_update_period(
    trace: WorkloadTrace,
    periods: list[int] | None = None,
    base_config: AcceleratorConfig | None = None,
) -> list[UpdatePeriodPoint]:
    """Sweep the sparsity-update period and report speed-up vs the dense baseline.

    With stale classifications, channels that turned dense stay on the SPE
    (slowing it down) and channels that turned sparse stay on the DPE
    (missing skip opportunities), so speed-up degrades as the period grows —
    the trend of Fig. 11 (right).
    """
    periods = periods if periods is not None else [1, 2, 4, 8, 16]
    base_config = base_config or sqdm_config()
    baseline_report = AcceleratorSimulator(
        dense_baseline_config(pe=base_config.pe)
    ).run_trace(trace)

    points = []
    for period in periods:
        config = base_config.with_update_period(int(period))
        simulator = AcceleratorSimulator(config)
        report = simulator.run_trace(trace)
        points.append(
            UpdatePeriodPoint(
                update_period=int(period),
                speedup=safe_speedup(baseline_report.total_cycles, report.total_cycles),
                updates_performed=simulator.detector_stats.updates_performed,
            )
        )
    return points


def detection_overhead_fraction(
    trace: WorkloadTrace, config: AcceleratorConfig | None = None
) -> float:
    """Fraction of total energy spent in the sparsity detector.

    Supports the paper's claim that the overhead of per-step sparsity updates
    is negligible compared to the overall computation cost.
    """
    config = config or sqdm_config()
    report = AcceleratorSimulator(config).run_trace(trace)
    total = report.total_energy.total_pj
    if total == 0:
        return 0.0
    return report.total_energy.detector_pj / total
