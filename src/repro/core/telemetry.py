"""Unified telemetry: metrics registry, trace spans, and a structured event log.

A fleet service is only operable when its hot paths report what they are
doing — queue depth, coalescing ratio, cache hit rates, kernel-call and
request latencies.  Large distributed acquisition systems bake run monitoring
into the architecture rather than bolting it on, and remotely operated
instruments need telemetry precisely because nobody watches the process
directly.  This module is that layer for the whole codebase, on the standard
library only:

:class:`MetricsRegistry`
    A process-wide, thread-safe registry of :class:`Counter`,
    :class:`Gauge` and :class:`Histogram` metrics.  Every metric op
    (increment, set, observe) takes one shared lock, so multi-metric reads
    — :meth:`MetricsRegistry.collect`, the Prometheus renderer, the
    scheduler's derived :class:`~repro.serve.scheduler.BatchStats` view —
    see a *consistent* snapshot.  Histograms use fixed cumulative buckets
    (no per-sample storage), so a histogram's cost is O(1) per observation
    and p50/p95/p99 estimates come from bucket interpolation.
:func:`render_prometheus`
    The registry in Prometheus text exposition format (version 0.0.4), the
    payload behind ``GET /metrics`` on the evaluation server.
:class:`Span` / :func:`span` / :class:`Trace`
    Lightweight timing spans.  :func:`span` is a context manager with
    thread-local nesting for code-shaped regions (a kernel call, a disk
    read); :class:`Trace` is an explicit phase recorder that *follows a
    job across threads* through its lifecycle (``submitted`` →
    ``coalesced``/``attached`` → ``dispatched`` → ``kernel`` →
    ``finished``).  All timing uses :func:`time.monotonic`.
:class:`EventLog`
    Structured JSON-lines logging, **off by default** so servers stay
    quiet.  Opt in with the ``REPRO_LOG`` environment variable
    (``error`` / ``info`` / ``debug``) or ``repro serve --log-level``;
    spans, job transitions and HTTP access records all flow through it.

Everything here is intentionally dependency-free and cheap: the overhead
test in ``tests/test_telemetry.py`` bounds the per-operation cost so
instrumenting the hot paths keeps tier-1 runtime flat.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Trace",
    "configure_event_log",
    "event_log",
    "get_registry",
    "quantile_from_buckets",
    "render_prometheus",
    "span",
]

#: Environment variable enabling the structured event log (level name).
LOG_ENV_VAR = "REPRO_LOG"

#: Default latency buckets (seconds): 100 µs .. 2 minutes, roughly log-spaced.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Default size/shape buckets (counts): 1 .. 1M, log-spaced.
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000,
    10_000, 50_000, 100_000, 500_000, 1_000_000,
)

LabelValues = tuple[str, ...]


def _label_key(
    label_names: tuple[str, ...], labels: Mapping[str, Any]
) -> LabelValues:
    if set(labels) != set(label_names):
        raise ValueError(
            f"metric expects labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Metric:
    """Shared plumbing: name, help text, label names, the registry lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str], lock: threading.RLock) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._lock = lock

    def _check_compatible(self, kind: str, labels: Sequence[str]) -> None:
        if self.kind != kind or self.label_names != tuple(labels):
            raise ValueError(
                f"metric {self.name!r} already registered as {self.kind} with "
                f"labels {self.label_names}; cannot re-register as {kind} with "
                f"labels {tuple(labels)}"
            )


class Counter(_Metric):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: Sequence[str], lock: threading.RLock) -> None:
        super().__init__(name, help, labels, lock)
        self._values: dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._values.values())

    def _samples(self) -> list[tuple[str, dict[str, str], float]]:
        return [
            (self.name, dict(zip(self.label_names, key)), value)
            for key, value in self._values.items()
        ]


class Gauge(_Metric):
    """A value that can go up and down, set directly or read via callback."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Sequence[str], lock: threading.RLock) -> None:
        super().__init__(name, help, labels, lock)
        self._values: dict[LabelValues, float] = {}
        self._fn: Callable[[], float] | None = None

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float] | None) -> None:
        """Read the gauge from ``fn()`` at collection time (unlabeled only).

        The last registered callback wins; pass None to unregister.  A
        callback that raises reports the last directly-set value instead of
        breaking collection.
        """
        if self.label_names:
            raise ValueError("callback gauges cannot be labeled")
        with self._lock:
            self._fn = fn

    def clear_function(self, fn: Callable[[], float]) -> None:
        """Unregister ``fn`` if it is still the active callback (no-op otherwise),
        so a closing component never clobbers a newer owner's callback."""
        with self._lock:
            if self._fn is fn:
                self._fn = None

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            fn = self._fn
            stored = self._values.get(key, 0.0)
        if fn is not None:
            try:
                return float(fn())
            except Exception:  # noqa: BLE001 - observers must not break collection
                return stored
        return stored

    def _samples(self) -> list[tuple[str, dict[str, str], float]]:
        if self._fn is not None:
            return [(self.name, {}, self.value())]
        return [
            (self.name, dict(zip(self.label_names, key)), value)
            for key, value in self._values.items()
        ]


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds in increasing order; an implicit ``+Inf``
    bucket catches everything beyond the last bound.  Observations update
    O(1) state per label set: the per-bucket counts, the running sum and the
    total count — no samples are stored, so a histogram never grows.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels, lock)
        uppers = tuple(float(b) for b in buckets)
        if not uppers or list(uppers) != sorted(set(uppers)):
            raise ValueError("buckets must be a non-empty, strictly increasing sequence")
        self.buckets = uppers
        #: per label set: ([per-bucket counts..., +Inf count], sum, count)
        self._state: dict[LabelValues, tuple[list[int], float, int]] = {}

    def _check_compatible(self, kind: str, labels: Sequence[str]) -> None:
        super()._check_compatible(kind, labels)

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        value = float(value)
        with self._lock:
            state = self._state.get(key)
            if state is None:
                state = ([0] * (len(self.buckets) + 1), 0.0, 0)
            counts, total, count = state
            index = len(self.buckets)
            for i, upper in enumerate(self.buckets):
                if value <= upper:
                    index = i
                    break
            counts[index] += 1
            self._state[key] = (counts, total + value, count + 1)

    def snapshot(self, **labels: Any) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count) for one label set."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            counts, total, count = self._state.get(key, ([0] * (len(self.buckets) + 1), 0.0, 0))
            cumulative: list[int] = []
            running = 0
            for c in counts:
                running += c
                cumulative.append(running)
            return cumulative, total, count

    def count(self, **labels: Any) -> int:
        return self.snapshot(**labels)[2]

    def sum(self, **labels: Any) -> float:
        return self.snapshot(**labels)[1]

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Estimated q-quantile from the cumulative buckets; None when empty."""
        cumulative, _, count = self.snapshot(**labels)
        if count == 0:
            return None
        return quantile_from_buckets(self.buckets, cumulative, q)

    def _samples(self) -> list[tuple[str, dict[str, str], float]]:
        samples: list[tuple[str, dict[str, str], float]] = []
        for key in self._state:
            base = dict(zip(self.label_names, key))
            counts, total, count = self._state[key]
            running = 0
            for upper, bucket_count in zip(self.buckets, counts):
                running += bucket_count
                samples.append(
                    (f"{self.name}_bucket", {**base, "le": _format_le(upper)}, running)
                )
            running += counts[-1]
            samples.append((f"{self.name}_bucket", {**base, "le": "+Inf"}, running))
            samples.append((f"{self.name}_sum", base, total))
            samples.append((f"{self.name}_count", base, count))
        return samples


def quantile_from_buckets(
    uppers: Sequence[float], cumulative: Sequence[float], q: float
) -> float:
    """Estimate a quantile from cumulative bucket counts (Prometheus-style).

    ``uppers`` are the finite bucket upper bounds, ``cumulative`` the
    cumulative counts aligned with them plus a trailing ``+Inf`` entry.
    Linear interpolation inside the winning bucket; the +Inf bucket clamps
    to the last finite bound (the histogram cannot say more).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = cumulative[-1]
    if total <= 0:
        return 0.0
    rank = q * total
    previous_cum = 0.0
    lower = 0.0
    for upper, cum in zip(uppers, cumulative):
        if rank <= cum:
            if cum == previous_cum:
                return float(upper)
            fraction = (rank - previous_cum) / (cum - previous_cum)
            return float(lower + (upper - lower) * fraction)
        previous_cum = cum
        lower = upper
    return float(uppers[-1])


def _format_le(upper: float) -> str:
    """Prometheus renders integral bounds without a trailing .0."""
    if upper == int(upper):
        return str(int(upper)) + ".0"
    return repr(upper)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class MetricsRegistry:
    """Thread-safe, process-wide home of every metric.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first call
    registers the metric, later calls return the same object (a kind or
    label mismatch raises, catching typos early).  All metric operations in
    one registry share a single re-entrant lock, so multi-metric snapshots
    (:meth:`collect`, :meth:`locked`) are consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    # -- registration ----------------------------------------------------------

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                existing._check_compatible("histogram", labels)
                assert isinstance(existing, Histogram)
                return existing
            metric = Histogram(name, help, labels, self._lock, buckets=buckets)
            self._metrics[name] = metric
            return metric

    def _get_or_create(
        self, cls: type, name: str, help: str, labels: Sequence[str]
    ) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                existing._check_compatible(cls.kind, labels)
                return existing
            metric = cls(name, help, labels, self._lock)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def unregister(self, name: str) -> bool:
        """Drop one metric (tests and short-lived instrumentation)."""
        with self._lock:
            return self._metrics.pop(name, None) is not None

    @contextmanager
    def locked(self) -> Iterator[None]:
        """Hold the registry lock: reads inside see one consistent snapshot."""
        with self._lock:
            yield

    # -- collection ------------------------------------------------------------

    def collect(self) -> dict[str, Any]:
        """Every metric's current samples as a JSON-friendly dict."""
        with self._lock:
            out: dict[str, Any] = {}
            for name, metric in sorted(self._metrics.items()):
                out[name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "samples": [
                        {"name": s_name, "labels": labels, "value": value}
                        for s_name, labels, value in metric._samples()
                    ],
                }
            return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            for name, metric in sorted(self._metrics.items()):
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
                lines.append(f"# TYPE {name} {metric.kind}")
                for sample_name, labels, value in metric._samples():
                    if labels:
                        rendered = ",".join(
                            f'{key}="{_escape_label_value(str(val))}"'
                            for key, val in labels.items()
                        )
                        lines.append(f"{sample_name}{{{rendered}}} {_format_value(value)}")
                    else:
                        lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: The process-wide registry every instrumented layer records into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (one object for the whole process)."""
    return REGISTRY


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Prometheus text for ``registry`` (default: the process-wide one)."""
    return (registry or REGISTRY).render_prometheus()


# -- structured event log ---------------------------------------------------------

_LOG_LEVELS = {"off": 0, "error": 1, "info": 2, "debug": 3}


class EventLog:
    """JSON-lines event sink, off by default.

    Each event is one line — ``{"ts": ..., "event": ..., **fields}`` — on the
    configured stream (stderr by default), so a server's telemetry can be
    shipped with any log collector without a parser.  The level gate is a
    plain integer comparison, so a disabled log costs one attribute read per
    call site.
    """

    def __init__(self, level: str | None = None, stream: Any = None) -> None:
        if level is None:
            level = os.environ.get(LOG_ENV_VAR, "").strip().lower() or "off"
        self.configure(level=level, stream=stream)
        self._lock = threading.Lock()

    def configure(self, level: str | None = None, stream: Any = None) -> None:
        """Change the level and/or output stream at runtime."""
        if level is not None:
            if level not in _LOG_LEVELS:
                raise ValueError(
                    f"unknown log level {level!r}; one of {sorted(_LOG_LEVELS)}"
                )
            self.level = level
            self._threshold = _LOG_LEVELS[level]
        if stream is not None:
            self._stream = stream
        elif not hasattr(self, "_stream"):
            self._stream = None  # resolved to sys.stderr at emit time

    def enabled(self, level: str = "info") -> bool:
        return self._threshold >= _LOG_LEVELS.get(level, _LOG_LEVELS["info"])

    def emit(self, event: str, level: str = "info", **fields: Any) -> None:
        """Write one structured event if the log is enabled for ``level``."""
        if not self.enabled(level):
            return
        # repro: allow[REP002] log-record timestamp is display-only wall time
        record = {"ts": round(time.time(), 6), "level": level, "event": event}
        for key, value in fields.items():
            if isinstance(value, float):
                value = round(value, 9)
            record[key] = value
        line = json.dumps(record, default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):  # closed stream: telemetry never raises
                pass


#: The process-wide event log (level from ``REPRO_LOG``, off by default).
_EVENT_LOG = EventLog()


def event_log() -> EventLog:
    """The process-wide structured event log."""
    return _EVENT_LOG


def configure_event_log(level: str | None = None, stream: Any = None) -> EventLog:
    """Reconfigure the process-wide event log (``repro serve --log-level``)."""
    _EVENT_LOG.configure(level=level, stream=stream)
    return _EVENT_LOG


# -- trace spans ------------------------------------------------------------------


class Span:
    """One timed region: a name, monotonic start/end, attributes, children."""

    __slots__ = ("name", "attrs", "start", "end", "parent", "children")

    def __init__(
        self, name: str, attrs: dict[str, Any] | None = None, parent: "Span | None" = None
    ) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start = time.monotonic()
        self.end: float | None = None
        self.parent = parent
        self.children: list[Span] = []
        if parent is not None:
            parent.children.append(self)

    @property
    def duration(self) -> float | None:
        """Seconds between start and finish; None while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self) -> "Span":
        if self.end is None:
            self.end = time.monotonic()
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, duration={self.duration})"


_SPAN_STACK = threading.local()


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    return getattr(_SPAN_STACK, "span", None)


@contextmanager
def span(
    name: str,
    histogram: Histogram | None = None,
    log_level: str = "debug",
    **attrs: Any,
) -> Iterator[Span]:
    """Time a code region as a span, nested under the thread's current span.

    On exit the span's duration is observed into ``histogram`` (when given)
    and emitted to the event log at ``log_level`` with the span's attributes.
    """
    parent = current_span()
    active = Span(name, attrs=dict(attrs), parent=parent)
    _SPAN_STACK.span = active
    try:
        yield active
    finally:
        active.finish()
        _SPAN_STACK.span = parent
        if histogram is not None:
            histogram.observe(active.duration or 0.0)
        _EVENT_LOG.emit(
            "span", level=log_level, name=name, duration_s=active.duration, **active.attrs
        )


class Trace:
    """Phase recorder that follows one unit of work *across threads*.

    Unlike :func:`span` (thread-local nesting), a Trace is owned by the thing
    being traced — a job — and every layer that touches it marks a phase:
    ``submitted`` → ``coalesced``/``attached`` → ``dispatched`` → ``kernel``
    → ``finished``.  Marks are (phase, monotonic time, fields) tuples;
    :meth:`elapsed` gives the distance between two phases.
    """

    __slots__ = ("trace_id", "marks", "_lock")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.marks: list[tuple[str, float, dict[str, Any]]] = []
        self._lock = threading.Lock()

    def mark(self, phase: str, **fields: Any) -> float:
        """Record a lifecycle phase now; returns the monotonic timestamp."""
        now = time.monotonic()
        with self._lock:
            self.marks.append((phase, now, fields))
        _EVENT_LOG.emit(f"job.{phase}", level="debug", trace_id=self.trace_id, **fields)
        return now

    def when(self, phase: str) -> float | None:
        """Monotonic timestamp of the first mark of ``phase``, if any."""
        with self._lock:
            for name, ts, _ in self.marks:
                if name == phase:
                    return ts
        return None

    def elapsed(self, start_phase: str, end_phase: str) -> float | None:
        """Seconds between two phases; None unless both were marked."""
        start, end = self.when(start_phase), self.when(end_phase)
        if start is None or end is None:
            return None
        return end - start

    def phases(self) -> list[str]:
        with self._lock:
            return [name for name, _, _ in self.marks]
