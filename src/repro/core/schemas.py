"""Wire-schema registrations for the repository's boundary-crossing types.

Importing this module (which :mod:`repro.core.codec` does lazily on first
use) registers a versioned schema for every dataclass that crosses a
process or network boundary: accelerator configurations, workload traces,
simulation reports, pipeline evaluations, FID reference statistics, and the
cache/eviction statistics the HTTP API reports.  Job specs and their
results live with the service layer in :mod:`repro.serve.specs`.

Schema names are stable wire identifiers; evolving a type means registering
the next version here (``register_dataclass(cls, name, version=2, ...)``)
while keeping the old decoder alive for as long as stored artifacts and
deployed clients may still speak it.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..accelerator.backends.base import DetectorStats
from ..accelerator.config import AcceleratorConfig, PEConfig
from ..accelerator.controller import LayerExecutionResult
from ..accelerator.energy import EnergyBreakdown, EnergyTable
from ..accelerator.pe import ChannelGroupResult
from ..accelerator.simulator import SimulationReport, StepResult
from ..accelerator.workload import ConvLayerWorkload
from ..diffusion.fid import FeatureStatistics
from . import codec
from .artifacts import ArtifactStoreStats, EvictionResult, MigrationResult
from .codec import Decoder, Encoder, register_dataclass, register_schema
from .columnar import ARRAY_FIELDS, ColumnarReportBatch
from .costs import CostSummary
from .pipeline import HardwareEvaluation, QuantizationEvaluation
from .report_cache import CacheStats
from .sparsity import TemporalSparsityTrace, TracedLayer

#: Schema name for a whole workload trace (``list[list[ConvLayerWorkload]]``),
#: which has no dataclass of its own — encode with
#: ``codec.encode(trace, name=WORKLOAD_TRACE_SCHEMA)``.
WORKLOAD_TRACE_SCHEMA = "workload_trace"

# -- hardware configuration --------------------------------------------------------

register_dataclass(PEConfig, "pe_config")
register_dataclass(AcceleratorConfig, "accelerator_config")
register_dataclass(
    EnergyTable,
    "energy_table",
    # JSON objects stringify keys: accept {"4": 0.06} and the $dict form alike.
    decode_hook=lambda kwargs: {
        **kwargs,
        "mac_pj": {int(bits): float(pj) for bits, pj in kwargs.get("mac_pj", {}).items()},
    },
)

# -- workloads and traces ----------------------------------------------------------

register_dataclass(ConvLayerWorkload, "conv_layer_workload")


def _encode_trace(trace: Any, ctx: Encoder) -> dict:
    return {"steps": [[ctx.encode(workload) for workload in workloads] for workloads in trace]}


def _decode_trace(doc: Mapping[str, Any], ctx: Decoder) -> list[list[ConvLayerWorkload]]:
    steps = doc["steps"]
    if not isinstance(steps, list) or not all(isinstance(step, list) for step in steps):
        raise codec.SchemaError("workload_trace 'steps' must be a list of lists")
    decoded = [[ctx.decode(workload) for workload in step] for step in steps]
    for step in decoded:
        for workload in step:
            if not isinstance(workload, ConvLayerWorkload):
                raise codec.SchemaError(
                    f"workload_trace steps must contain conv_layer_workload "
                    f"envelopes, got {type(workload).__name__}"
                )
    return decoded


register_schema(WORKLOAD_TRACE_SCHEMA, 1, _encode_trace, _decode_trace)

register_dataclass(TracedLayer, "traced_layer")
register_dataclass(TemporalSparsityTrace, "sparsity_trace")

# -- simulation results ------------------------------------------------------------

register_dataclass(EnergyBreakdown, "energy_breakdown")
register_dataclass(ChannelGroupResult, "channel_group_result")
register_dataclass(LayerExecutionResult, "layer_execution_result")
register_dataclass(StepResult, "step_result")
register_dataclass(DetectorStats, "detector_stats")
register_dataclass(SimulationReport, "simulation_report")

# Integer-valued columns of a columnar batch; everything else is float64.
_COLUMNAR_INT_FIELDS = frozenset(
    {
        "traces_per_config",
        "trace_steps",
        "step_sizes",
        "dense_channels",
        "sparse_channels",
        "detector_updates",
        "detector_channels",
    }
)


def _encode_columnar_batch(batch: ColumnarReportBatch, ctx: Encoder) -> dict:
    # One envelope for the whole (config x trace x step x layer) grid: two
    # string lists plus one $ndarray sidecar per column, instead of thousands
    # of nested report/step/layer dicts.
    doc: dict[str, Any] = {
        "config_names": list(batch.config_names),
        "layer_names": list(batch.layer_names),
    }
    for name in ARRAY_FIELDS:
        doc[name] = ctx.ndarray(getattr(batch, name))
    return doc


def _decode_columnar_batch(doc: Mapping[str, Any], ctx: Decoder) -> ColumnarReportBatch:
    for key in ("config_names", "layer_names"):
        names = doc[key]
        if not isinstance(names, list) or not all(isinstance(name, str) for name in names):
            raise codec.SchemaError(f"columnar_report_batch {key!r} must be a list of strings")
    arrays = {
        name: ctx.ndarray(doc[name], dtype="int64" if name in _COLUMNAR_INT_FIELDS else "float64")
        for name in ARRAY_FIELDS
    }
    try:
        return ColumnarReportBatch(
            config_names=list(doc["config_names"]),
            layer_names=list(doc["layer_names"]),
            **arrays,
        )
    except ValueError as exc:
        raise codec.SchemaError(f"inconsistent columnar_report_batch: {exc}") from None


register_schema(
    "columnar_report_batch",
    1,
    _encode_columnar_batch,
    _decode_columnar_batch,
    type=ColumnarReportBatch,
)

# -- pipeline evaluations ----------------------------------------------------------

register_dataclass(CostSummary, "cost_summary")
register_dataclass(QuantizationEvaluation, "quantization_evaluation")
register_dataclass(HardwareEvaluation, "hardware_evaluation")
register_dataclass(FeatureStatistics, "feature_statistics")

# -- cache / store statistics ------------------------------------------------------

register_dataclass(CacheStats, "cache_stats")
register_dataclass(ArtifactStoreStats, "artifact_store_stats")
register_dataclass(EvictionResult, "eviction_result")
register_dataclass(MigrationResult, "migration_result")
