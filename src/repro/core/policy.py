"""Mixed-precision quantization policy (Sec. III-A and III-B of the paper).

The SQ-DM quantization scheme:

* **Sensitive blocks stay at 8-bit.**  The block-wise sensitivity experiment
  (Fig. 3) shows only the first and last few U-Net blocks are materially
  sensitive to 4-bit quantization; keeping them at MXINT8 costs only ~5% of
  total compute/memory.
* **Everything else goes to 4-bit** using the paper's INT4 format with FP8
  (E4M3) per-vector scale factors for weights, and — once SiLU has been
  replaced with ReLU — UINT4 with FP8 scales for activations, so that all 16
  levels of the 4-bit code are used (Fig. 6).
* **Skip / Embedding / Attention blocks stay at 8-bit** because they account
  for well under 10% of compute and memory (Fig. 4).

``QuantizationPolicy`` assigns a weight/activation format pair to every
quantizable layer of an :class:`~repro.nn.unet.EDMUNet` and can apply or
strip those assignments in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nn.layers import Conv2d, Linear, Module
from ..nn.unet import BLOCK_ATTENTION, BLOCK_CONV, BLOCK_EMBEDDING, BLOCK_SKIP, EDMUNet
from ..quant.formats import (
    QuantFormatSpec,
    fp16_spec,
    fp32_spec,
    int4_fp8_spec,
    int4_spec,
    int4_vsq_spec,
    int8_spec,
    mxint8_spec,
    uint4_fp8_spec,
)


@dataclass
class LayerAssignment:
    """Format assignment for one quantizable layer."""

    layer_name: str
    block_name: str
    block_type: str
    weight_spec: QuantFormatSpec
    act_spec: QuantFormatSpec

    @property
    def weight_bits(self) -> int:
        return self.weight_spec.element_bits

    @property
    def act_bits(self) -> int:
        return self.act_spec.element_bits


@dataclass
class QuantizationPolicy:
    """A complete per-layer format assignment for a U-Net.

    ``name`` identifies the scheme in tables ("INT4-VSQ", "Ours (MP-only)",
    "Ours (MP+ReLU)", ...).  ``assignments`` maps layer names to their
    format pair.
    """

    name: str
    assignments: dict[str, LayerAssignment] = field(default_factory=dict)
    requires_relu: bool = False

    def apply(self, model: EDMUNet) -> None:
        """Attach the weight/activation specs to the model's layers in place."""
        layer_index = _quantizable_layers(model)
        for layer_name, assignment in self.assignments.items():
            layer = layer_index.get(layer_name)
            if layer is None:
                raise KeyError(f"policy refers to unknown layer {layer_name!r}")
            layer.weight_spec = (
                assignment.weight_spec if assignment.weight_spec.is_quantized else None
            )
            layer.act_spec = assignment.act_spec if assignment.act_spec.is_quantized else None

    def clear(self, model: EDMUNet) -> None:
        """Remove all quantization specs from the model."""
        for layer in _quantizable_layers(model).values():
            layer.weight_spec = None
            layer.act_spec = None

    def bits_for_layer(self, layer_name: str) -> tuple[int, int]:
        """(weight_bits, act_bits) a layer executes at under this policy."""
        assignment = self.assignments.get(layer_name)
        if assignment is None:
            return 16, 16
        return assignment.weight_bits, assignment.act_bits

    def average_bits(self) -> tuple[float, float]:
        """Unweighted average (weight, activation) bits across assigned layers."""
        if not self.assignments:
            return 16.0, 16.0
        weight = sum(a.weight_bits for a in self.assignments.values()) / len(self.assignments)
        act = sum(a.act_bits for a in self.assignments.values()) / len(self.assignments)
        return weight, act


def _quantizable_layers(model: EDMUNet) -> dict[str, Module]:
    """All Conv2d/Linear layers keyed by their dotted module names."""
    return {
        name: module
        for name, module in model.named_modules()
        if isinstance(module, (Conv2d, Linear))
    }


def _classify_layer(model: EDMUNet, layer_name: str) -> tuple[str, str]:
    """Map a dotted layer name to (block name, block category)."""
    for info in model.block_infos():
        if f".{info.name}." in layer_name or layer_name.endswith(f".{info.name}"):
            tail = layer_name.rsplit(".", 1)[-1]
            if tail in ("conv0", "conv1"):
                return info.name, BLOCK_CONV
            if tail == "skip_conv":
                return info.name, BLOCK_SKIP
            if tail == "emb_linear":
                return info.name, BLOCK_EMBEDDING
            if tail in ("qkv", "proj"):
                return info.name, BLOCK_ATTENTION
            return info.name, BLOCK_CONV
    tail = layer_name.rsplit(".", 1)[-1]
    if tail in ("conv_in", "conv_out"):
        return tail, BLOCK_SKIP
    if "label_linear" in tail or "emb_linear" in tail:
        return tail, BLOCK_EMBEDDING
    return tail, BLOCK_SKIP


def sensitive_block_names(model: EDMUNet, num_boundary_blocks: int = 1) -> set[str]:
    """Blocks kept at 8-bit: the first and last ``num_boundary_blocks`` blocks.

    Mirrors the conclusion of Fig. 3 ("only the first and last few blocks are
    generally more sensitive to quantization").
    """
    infos = model.block_infos()
    if not infos:
        return set()
    k = max(0, min(num_boundary_blocks, len(infos)))
    ordered = sorted(infos, key=lambda info: info.order)
    names = {info.name for info in ordered[:k]}
    names.update(info.name for info in ordered[-k:] if k > 0)
    return names


def uniform_policy(
    model: EDMUNet, spec: QuantFormatSpec, name: str | None = None
) -> QuantizationPolicy:
    """Quantize every layer's weights and activations with one format (Table I rows)."""
    policy = QuantizationPolicy(name=name or spec.name)
    for layer_name in _quantizable_layers(model):
        block_name, block_type = _classify_layer(model, layer_name)
        policy.assignments[layer_name] = LayerAssignment(
            layer_name=layer_name,
            block_name=block_name,
            block_type=block_type,
            weight_spec=spec,
            act_spec=spec,
        )
    return policy


def mixed_precision_policy(
    model: EDMUNet,
    relu: bool = False,
    num_boundary_blocks: int = 1,
    low_precision_block: QuantFormatSpec | None = None,
    name: str | None = None,
) -> QuantizationPolicy:
    """The paper's mixed-precision policy: Ours (MP-only) or Ours (MP+ReLU).

    Conv+Act convolutions in non-sensitive blocks run at 4-bit (INT4+FP8
    scales for weights; UINT4+FP8 scales for activations when ``relu`` is
    true, signed INT4 otherwise).  Sensitive boundary blocks and all Skip /
    Embedding / Attention layers run at MXINT8.
    """
    eight_bit = mxint8_spec()
    weight_4bit = low_precision_block or int4_fp8_spec()
    act_4bit = uint4_fp8_spec() if relu else int4_fp8_spec()
    sensitive = sensitive_block_names(model, num_boundary_blocks)

    default_name = "Ours (MP+ReLU)" if relu else "Ours (MP-only)"
    policy = QuantizationPolicy(name=name or default_name, requires_relu=relu)
    for layer_name in _quantizable_layers(model):
        block_name, block_type = _classify_layer(model, layer_name)
        use_4bit = block_type == BLOCK_CONV and block_name not in sensitive
        weight_spec = weight_4bit if use_4bit else eight_bit
        act_spec = act_4bit if use_4bit else eight_bit
        policy.assignments[layer_name] = LayerAssignment(
            layer_name=layer_name,
            block_name=block_name,
            block_type=block_type,
            weight_spec=weight_spec,
            act_spec=act_spec,
        )
    return policy


def single_block_4bit_policy(
    model: EDMUNet, block_name: str, low_precision: QuantFormatSpec | None = None
) -> QuantizationPolicy:
    """Sensitivity-sweep policy (Fig. 3): one block at 4-bit, all others at MXINT8."""
    if block_name not in set(model.block_names()):
        raise KeyError(f"unknown block {block_name!r}; available: {model.block_names()}")
    eight_bit = mxint8_spec()
    four_bit = low_precision or int4_fp8_spec()
    policy = QuantizationPolicy(name=f"4bit@{block_name}")
    for layer_name in _quantizable_layers(model):
        owner, block_type = _classify_layer(model, layer_name)
        use_4bit = owner == block_name and block_type == BLOCK_CONV
        spec = four_bit if use_4bit else eight_bit
        policy.assignments[layer_name] = LayerAssignment(
            layer_name=layer_name,
            block_name=owner,
            block_type=block_type,
            weight_spec=spec,
            act_spec=spec,
        )
    return policy


#: Table I row label -> format-spec factory.
TABLE1_POLICY_SPECS = {
    "FP32": fp32_spec,
    "FP16": fp16_spec,
    "INT8": int8_spec,
    "MXINT8": mxint8_spec,
    "INT4": int4_spec,
    "INT4-VSQ": int4_vsq_spec,
}


def table1_policy(model: EDMUNet, format_name: str) -> QuantizationPolicy:
    """Uniform policy for one of the Table I format rows."""
    try:
        spec = TABLE1_POLICY_SPECS[format_name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown Table I format {format_name!r}; expected one of {sorted(TABLE1_POLICY_SPECS)}"
        ) from exc
    return uniform_policy(model, spec, name=format_name)
