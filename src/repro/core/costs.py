"""Compute / memory cost accounting under a quantization policy.

Implements the paper's cost model (Sec. III-A): the relative cost of a MAC is
proportional to operand bit width (1 FP16 = 2 INT8 = 4 INT4 multiplies), and
memory cost is proportional to the stored bits per value including the
amortized fine-grained scale factors.  These are the numbers behind the
"Avg. Comp. Saving" / "Avg. Mem. Saving" columns of Table II and the ~5%
overhead figure quoted for keeping sensitive blocks at 8-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.unet import BLOCK_ATTENTION, BLOCK_CONV, BLOCK_EMBEDDING, BLOCK_SKIP, EDMUNet
from ..quant.formats import QuantFormatSpec, fp16_spec
from .policy import QuantizationPolicy


@dataclass(frozen=True)
class LayerCost:
    """Static cost of one quantizable layer (per network evaluation, batch 1)."""

    layer_name: str
    block_name: str
    block_type: str
    macs: float
    weight_elements: float
    activation_elements: float


@dataclass
class CostSummary:
    """Aggregate relative costs of a model under a quantization policy."""

    compute_cost: float
    memory_cost: float
    baseline_compute_cost: float
    baseline_memory_cost: float

    @property
    def compute_saving(self) -> float:
        if self.baseline_compute_cost == 0:
            return 0.0
        return 1.0 - self.compute_cost / self.baseline_compute_cost

    @property
    def memory_saving(self) -> float:
        if self.baseline_memory_cost == 0:
            return 0.0
        return 1.0 - self.memory_cost / self.baseline_memory_cost


def layer_cost_table(model: EDMUNet) -> list[LayerCost]:
    """Per-layer MAC and element counts for every quantizable layer of the U-Net."""
    costs: list[LayerCost] = []
    for info in model.block_infos():
        spatial = info.spatial
        block = info.block
        height, width = spatial
        pixels = height * width
        for idx, conv in enumerate(block.conv_layers()):
            costs.append(
                LayerCost(
                    layer_name=f"unet.{info.name}.conv{idx}",
                    block_name=info.name,
                    block_type=BLOCK_CONV,
                    macs=float(conv.macs(spatial)),
                    weight_elements=float(conv.weight.size),
                    activation_elements=float(conv.in_channels * pixels),
                )
            )
        costs.append(
            LayerCost(
                layer_name=f"unet.{info.name}.emb_linear",
                block_name=info.name,
                block_type=BLOCK_EMBEDDING,
                macs=float(block.emb_linear.macs(1)),
                weight_elements=float(block.emb_linear.weight.size),
                activation_elements=float(block.emb_linear.in_features),
            )
        )
        if block.skip_conv is not None:
            costs.append(
                LayerCost(
                    layer_name=f"unet.{info.name}.skip_conv",
                    block_name=info.name,
                    block_type=BLOCK_SKIP,
                    macs=float(block.skip_conv.macs(spatial)),
                    weight_elements=float(block.skip_conv.weight.size),
                    activation_elements=float(block.skip_conv.in_channels * pixels),
                )
            )
        if block.attention is not None:
            attn = block.attention
            tokens = pixels
            attention_matmul_macs = 2.0 * tokens * tokens * attn.channels
            costs.append(
                LayerCost(
                    layer_name=f"unet.{info.name}.attention.qkv",
                    block_name=info.name,
                    block_type=BLOCK_ATTENTION,
                    macs=float(attn.qkv.macs(spatial)) + attention_matmul_macs,
                    weight_elements=float(attn.qkv.weight.size),
                    activation_elements=float(3 * attn.channels * pixels),
                )
            )
            costs.append(
                LayerCost(
                    layer_name=f"unet.{info.name}.attention.proj",
                    block_name=info.name,
                    block_type=BLOCK_ATTENTION,
                    macs=float(attn.proj.macs(spatial)),
                    weight_elements=float(attn.proj.weight.size),
                    activation_elements=float(attn.channels * pixels),
                )
            )

    res = model.config.img_resolution
    for name, conv in (("unet.conv_in", model.conv_in), ("unet.conv_out", model.conv_out)):
        costs.append(
            LayerCost(
                layer_name=name,
                block_name=name.split(".")[-1],
                block_type=BLOCK_SKIP,
                macs=float(conv.macs((res, res))),
                weight_elements=float(conv.weight.size),
                activation_elements=float(conv.in_channels * res * res),
            )
        )
    for name, layer in (
        ("unet.emb_linear0", model.emb_linear0),
        ("unet.emb_linear1", model.emb_linear1),
    ):
        costs.append(
            LayerCost(
                layer_name=name,
                block_name=name.split(".")[-1],
                block_type=BLOCK_EMBEDDING,
                macs=float(layer.macs(1)),
                weight_elements=float(layer.weight.size),
                activation_elements=float(layer.in_features),
            )
        )
    return costs


def _compute_weight(weight_spec: QuantFormatSpec, act_spec: QuantFormatSpec) -> float:
    """Relative MAC cost versus FP16: proportional to the wider operand's bits."""
    bits = max(weight_spec.element_bits, act_spec.element_bits)
    return bits / 16.0


def _memory_weight(
    weight_spec: QuantFormatSpec, act_spec: QuantFormatSpec, weight_elems: float, act_elems: float
) -> float:
    """Stored bits of a layer's weights + activations, including scale overhead."""
    return weight_elems * weight_spec.bits_per_value() + act_elems * act_spec.bits_per_value()


def cost_summary(
    model: EDMUNet,
    policy: QuantizationPolicy | None,
    baseline_spec: QuantFormatSpec | None = None,
) -> CostSummary:
    """Relative compute/memory cost of ``policy`` versus an FP16 baseline.

    Layers the policy does not mention (or a ``None`` policy) are costed at
    the baseline precision.
    """
    baseline_spec = baseline_spec or fp16_spec()
    table = layer_cost_table(model)

    compute = 0.0
    memory = 0.0
    baseline_compute = 0.0
    baseline_memory = 0.0
    for cost in table:
        if policy is not None and cost.layer_name in policy.assignments:
            assignment = policy.assignments[cost.layer_name]
            weight_spec, act_spec = assignment.weight_spec, assignment.act_spec
        else:
            weight_spec = act_spec = baseline_spec
        compute += cost.macs * _compute_weight(weight_spec, act_spec)
        memory += _memory_weight(
            weight_spec, act_spec, cost.weight_elements, cost.activation_elements
        )
        baseline_compute += cost.macs * _compute_weight(baseline_spec, baseline_spec)
        baseline_memory += _memory_weight(
            baseline_spec, baseline_spec, cost.weight_elements, cost.activation_elements
        )
    return CostSummary(
        compute_cost=compute,
        memory_cost=memory,
        baseline_compute_cost=baseline_compute,
        baseline_memory_cost=baseline_memory,
    )


def high_precision_cost_fraction(model: EDMUNet, policy: QuantizationPolicy) -> float:
    """Fraction of total (FP16-equivalent) compute spent in >4-bit layers.

    The paper states the high-precision blocks account for only about 5% of
    the total cost, which is what justifies keeping them at MXINT8.
    """
    table = layer_cost_table(model)
    total = sum(c.macs for c in table)
    if total == 0:
        return 0.0
    high = 0.0
    for cost in table:
        assignment = policy.assignments.get(cost.layer_name)
        bits = assignment.weight_bits if assignment is not None else 16
        if bits > 4:
            high += cost.macs
    return high / total
