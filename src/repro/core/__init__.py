"""SQ-DM core: the paper's contribution (mixed-precision + temporal sparsity co-design)."""

from . import codec
from .artifacts import (
    ArtifactStore,
    ArtifactStoreStats,
    MigrationResult,
    artifact_store_at,
    default_artifact_store,
)
from .costs import CostSummary, LayerCost, cost_summary, high_precision_cost_fraction, layer_cost_table
from .experiments import SweepCaseResult, SweepResult, SweepSpec, run_sweep, sweep_table
from .pipeline import (
    HardwareEvaluation,
    PipelineConfig,
    QuantizationEvaluation,
    SQDMPipeline,
)
from .policy import (
    LayerAssignment,
    QuantizationPolicy,
    mixed_precision_policy,
    sensitive_block_names,
    single_block_4bit_policy,
    table1_policy,
    uniform_policy,
)
from .report_cache import (
    DEFAULT_REPORT_CACHE,
    CacheStats,
    ReportCache,
    fingerprint_config,
    fingerprint_energy_table,
    fingerprint_trace,
    simulate_cached,
)
from .scheduler import (
    ThresholdAnalysisPoint,
    UpdatePeriodPoint,
    analyze_threshold,
    analyze_update_period,
    best_threshold,
    detection_overhead_fraction,
)
from .sparsity import (
    TemporalSparsityTrace,
    TracedLayer,
    collect_sparsity_trace,
    sparsity_map,
    trace_to_workloads,
    traced_layers_for_model,
)

__all__ = [
    "DEFAULT_REPORT_CACHE",
    "ArtifactStore",
    "ArtifactStoreStats",
    "CacheStats",
    "CostSummary",
    "HardwareEvaluation",
    "LayerAssignment",
    "LayerCost",
    "MigrationResult",
    "PipelineConfig",
    "QuantizationEvaluation",
    "QuantizationPolicy",
    "ReportCache",
    "SQDMPipeline",
    "SweepCaseResult",
    "SweepResult",
    "SweepSpec",
    "TemporalSparsityTrace",
    "ThresholdAnalysisPoint",
    "TracedLayer",
    "UpdatePeriodPoint",
    "analyze_threshold",
    "analyze_update_period",
    "artifact_store_at",
    "best_threshold",
    "codec",
    "default_artifact_store",
    "collect_sparsity_trace",
    "cost_summary",
    "detection_overhead_fraction",
    "fingerprint_config",
    "fingerprint_energy_table",
    "fingerprint_trace",
    "high_precision_cost_fraction",
    "layer_cost_table",
    "mixed_precision_policy",
    "run_sweep",
    "sensitive_block_names",
    "simulate_cached",
    "single_block_4bit_policy",
    "sparsity_map",
    "sweep_table",
    "table1_policy",
    "trace_to_workloads",
    "traced_layers_for_model",
    "uniform_policy",
]
