"""Unified execution API: one ``Executor`` protocol over every backend.

The fleet layer grew four ways to run an evaluation — inline in the calling
thread, fanned out over :mod:`concurrent.futures` pools, queued on an
in-process :class:`~repro.serve.service.EvaluationService`, or POSTed to a
remote ``repro serve`` endpoint — and until now callers picked between them
with ``run_sweep(executor="...")`` string dispatch and juggled three
incompatible result types (``Job``, ``RemoteJob``, raw reports).  Large
acquisition systems solve the same problem by exposing *one* submission
front end over heterogeneous readout backends; this module is that front
end for the repository:

:class:`Executor`
    The protocol every backend implements: ``submit(spec) -> JobHandle``,
    ``map(specs)``, ``stats()``, ``capabilities()``, ``close()`` and
    context-manager lifecycle.  What is submitted are the typed job specs of
    :mod:`repro.serve.specs` (``simulate_spec`` / ``sweep_spec`` /
    ``quality_spec`` / ``callable_spec``) plus :class:`LocalCallSpec` for
    in-process callables that never cross a wire.
:class:`JobHandle`
    The uniform future every ``submit`` returns — ``result(timeout=)``,
    ``done()``, ``cancel()``, ``status``, ``add_done_callback`` — subsuming
    the previous ``Job`` / ``RemoteJob`` split.  ``result`` raises
    :class:`TimeoutError` when the timeout expires and
    :class:`JobFailedError` (chained to the underlying exception) when the
    job failed or was cancelled, on every backend.
:class:`InlineExecutor` / :class:`PoolExecutor` / :class:`ServiceExecutor` /
:class:`RemoteExecutor`
    The built-in backends.  ``InlineExecutor.map`` batches simulation work
    through one :func:`~repro.serve.scheduler.run_batched` pass (shared
    baselines coalesce exactly like the service's scheduler), so the
    pipeline's hardware evaluation keeps its batching behaviour when routed
    through the protocol.
:func:`register_executor` / :func:`resolve_executor`
    A name registry so new backends (pull-based workers, sharded servers)
    slot in behind the same surface — and so the deprecated
    ``run_sweep(executor="...")`` strings keep resolving during migration.

Everything serve-related is imported lazily: the core package stays
importable (and this module usable with :class:`InlineExecutor` /
:class:`PoolExecutor` on plain callables) without pulling the service stack
in at import time.
"""

from __future__ import annotations

import itertools
import pickle  # repro: allow[REP001] picklability *guard* only — nothing is ever deserialized
import threading
from abc import ABC, abstractmethod
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from .telemetry import event_log

if TYPE_CHECKING:  # pragma: no cover - typing only; serve imports stay lazy
    from ..serve.client import RemoteEvaluationClient
    from ..serve.service import EvaluationService
    from .report_cache import ReportCache


class JobStatus(str, Enum):
    """Lifecycle states of a submitted job, shared by every backend."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States in which a job will never produce further progress.
TERMINAL_STATUSES = (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


class JobFailedError(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job failed or was cancelled."""


def ensure_picklable(obj: Any, error_message: str) -> None:
    """Fail fast (and intelligibly) on payloads that cannot cross processes.

    ``ProcessPoolExecutor`` pickles work per submission; for lambdas,
    locally-defined functions or closures over live models that fails deep
    inside the pool with a bare ``PicklingError`` traceback.  Checking at the
    submission boundary turns it into an actionable error before any worker
    spawns — the process-pool executor and the evaluation service's sampling
    jobs both route through this guard.
    """
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise ValueError(f"{error_message} ({exc})") from exc


# -- specs -------------------------------------------------------------------------

#: Spec kinds that cross the wire (their registered schema names).
WIRE_SPEC_KINDS = ("simulate_spec", "sweep_spec", "quality_spec", "callable_spec")

#: Kind name of :class:`LocalCallSpec` submissions (local backends only).
LOCAL_CALL_KIND = "local_call"

#: Everything a fully local backend accepts.
LOCAL_SPEC_KINDS = frozenset(WIRE_SPEC_KINDS) | {LOCAL_CALL_KIND}


@dataclass(frozen=True)
class LocalCallSpec:
    """An in-process callable with its arguments — the local-only job spec.

    ``fn`` may also be a wire-function *name* (a string), in which case every
    backend — including :class:`RemoteExecutor` — resolves it through the
    wire-function registry of :mod:`repro.serve.specs`.  A live callable is
    accepted by the local backends as-is; :class:`RemoteExecutor` accepts it
    only when it is wire-registered, since code never crosses the wire.
    """

    fn: Callable[..., Any] | str
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "kwargs", dict(self.kwargs))

    def default_label(self) -> str:
        return f"call:{getattr(self.fn, '__name__', self.fn)}"


def spec_kind(spec: Any) -> str:
    """The kind name of one job spec (its wire-schema name, or ``local_call``).

    Raises :class:`TypeError` for anything that is not a job spec.
    """
    if isinstance(spec, LocalCallSpec):
        return LOCAL_CALL_KIND
    from ..serve.specs import CallableJobSpec, QualityJobSpec, SimulateJobSpec, SweepJobSpec

    for cls, kind in (
        (SimulateJobSpec, "simulate_spec"),
        (SweepJobSpec, "sweep_spec"),
        (QualityJobSpec, "quality_spec"),
        (CallableJobSpec, "callable_spec"),
    ):
        if isinstance(spec, cls):
            return kind
    raise TypeError(
        f"not a job spec: {type(spec).__name__} (expected SimulateJobSpec, "
        "SweepJobSpec, QualityJobSpec, CallableJobSpec or LocalCallSpec)"
    )


def _default_label(spec: Any) -> str:
    label = getattr(spec, "default_label", None)
    return label() if callable(label) else ""


def execute_spec(spec: Any, cache: "ReportCache | None" = None) -> Any:
    """Execute one job spec synchronously and return its result value.

    This is the single local interpretation of the typed specs, shared by
    :class:`InlineExecutor` and :class:`PoolExecutor` — and, being a
    module-level function over picklable specs, it is what process pools
    submit.  ``cache`` backs simulation and sweep specs (the process default
    when None).
    """
    kind = spec_kind(spec)
    if kind == LOCAL_CALL_KIND:
        fn = spec.fn
        if isinstance(fn, str):
            from ..serve.specs import resolve_wire_function

            fn = resolve_wire_function(fn)
        return fn(*spec.args, **dict(spec.kwargs))
    if kind == "simulate_spec":
        from ..serve.scheduler import run_batched

        return run_batched([_simulate_request(spec)], cache=cache)[0]
    if kind == "sweep_spec":
        from ..serve.scheduler import run_batched

        requests = spec.plan()
        # Keep results columnar: SweepJobResult materializes lazily, so a
        # sweep that only feeds aggregate queries never builds report objects.
        reports = run_batched(requests, cache=cache, materialize=False)
        return _sweep_result(spec, reports)
    if kind == "quality_spec":
        from ..serve.workers import evaluate_quality

        return evaluate_quality(**spec.worker_kwargs())
    # callable_spec: a named, registered server-side function.
    return spec.resolve()(*spec.args, **dict(spec.kwargs))


def _simulate_request(spec: Any) -> Any:
    """The one SimulateJobSpec -> SimulationRequest conversion, shared by the
    single-spec path (:func:`execute_spec`) and the inline batched path."""
    from ..serve.scheduler import SimulationRequest

    return SimulationRequest(
        config=spec.config,
        trace=spec.trace,
        energy_table=spec.energy_table,
        backend=spec.backend,
    )


def _sweep_result(spec: Any, reports: list) -> Any:
    from ..serve.specs import SweepJobResult

    num_cases = spec.num_cases
    return SweepJobResult(
        name=spec.name,
        params=spec.cases(),
        reports=reports[:num_cases],
        baseline=reports[num_cases] if spec.baseline is not None else None,
    )


# -- job handles -------------------------------------------------------------------


class JobHandle(ABC):
    """Uniform future for one submitted job, identical across backends.

    Every handle exposes ``id`` / ``label`` / ``kind`` attributes, the
    :attr:`status` property, and the blocking / completion API below.  The
    contract is the strict one the service's ``Job`` already kept:

    * :meth:`result` raises :class:`TimeoutError` when ``timeout`` expires
      first, and :class:`JobFailedError` — chained to the underlying
      exception via ``__cause__`` where one exists — when the job failed or
      was cancelled.
    * :meth:`cancel` returns True only when this call prevented the work
      from running; work that already started (or finished) is never
      interrupted.
    * :meth:`add_done_callback` fires exactly once per registered callback,
      immediately when the job is already terminal.
    """

    id: str
    label: str
    kind: str

    @property
    @abstractmethod
    def status(self) -> JobStatus:
        """The job's current lifecycle state."""

    @property
    @abstractmethod
    def error(self) -> BaseException | None:
        """The underlying failure, once the job is terminal (None if it succeeded)."""

    @abstractmethod
    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; False if the timeout expired first."""

    @abstractmethod
    def result(self, timeout: float | None = None) -> Any:
        """The job's result value, blocking until completion."""

    @abstractmethod
    def cancel(self) -> bool:
        """Cancel the job if it has not started; True when this call won."""

    @abstractmethod
    def add_done_callback(self, fn: Callable[["JobHandle"], None]) -> None:
        """Run ``fn(handle)`` once the job is terminal (immediately if it already is)."""

    def done(self) -> bool:
        """True once the job reached a terminal state (done, failed or cancelled)."""
        return self.status in TERMINAL_STATUSES

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.DONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(id={self.id!r}, status={self.status.value!r})"


class CompletedHandle(JobHandle):
    """A job that finished at submission time (the inline backend)."""

    def __init__(
        self,
        id: str,  # noqa: A002 - mirrors the handle attribute
        label: str,
        kind: str,
        value: Any = None,
        error: BaseException | None = None,
    ) -> None:
        self.id = id
        self.label = label
        self.kind = kind
        self._value = value
        self._error = error

    @property
    def status(self) -> JobStatus:
        return JobStatus.FAILED if self._error is not None else JobStatus.DONE

    @property
    def error(self) -> BaseException | None:
        return self._error

    def wait(self, timeout: float | None = None) -> bool:
        return True

    def result(self, timeout: float | None = None) -> Any:
        if self._error is not None:
            raise JobFailedError(
                f"job {self.id} ({self.label or self.kind}) failed: {self._error}"
            ) from self._error
        return self._value

    def cancel(self) -> bool:
        return False  # inline jobs run at submission; there is nothing to prevent

    def add_done_callback(self, fn: Callable[[JobHandle], None]) -> None:
        try:
            fn(self)
        except Exception as exc:  # noqa: BLE001 - same contract as every other backend
            event_log().emit(
                "executor.callback_error", level="warning", job=self.id, error=repr(exc)
            )


class FutureHandle(JobHandle):
    """A job running on a :mod:`concurrent.futures` pool."""

    def __init__(self, id: str, label: str, kind: str, future: Future) -> None:  # noqa: A002
        self.id = id
        self.label = label
        self.kind = kind
        self._future = future

    @property
    def status(self) -> JobStatus:
        future = self._future
        if future.cancelled():
            return JobStatus.CANCELLED
        if future.done():
            return JobStatus.FAILED if future.exception() is not None else JobStatus.DONE
        if future.running():
            return JobStatus.RUNNING
        return JobStatus.QUEUED

    @property
    def error(self) -> BaseException | None:
        future = self._future
        if future.cancelled():
            return JobFailedError(f"job {self.id} ({self.label or self.kind}) cancelled")
        if future.done():
            return future.exception()
        return None

    def wait(self, timeout: float | None = None) -> bool:
        try:
            self._future.exception(timeout)
        except CancelledError:
            return True
        except _FutureTimeout:
            return False
        return True

    def result(self, timeout: float | None = None) -> Any:
        if not self.wait(timeout):
            raise TimeoutError(f"job {self.id} ({self.label or self.kind}) still running")
        if self._future.cancelled():
            raise JobFailedError(f"job {self.id} ({self.label or self.kind}) cancelled")
        exc = self._future.exception()
        if exc is not None:
            raise JobFailedError(
                f"job {self.id} ({self.label or self.kind}) failed: {exc}"
            ) from exc
        return self._future.result()

    def cancel(self) -> bool:
        return self._future.cancel()

    def add_done_callback(self, fn: Callable[[JobHandle], None]) -> None:
        self._future.add_done_callback(lambda _future: fn(self))


class ServiceJobHandle(JobHandle):
    """A job queued on an in-process :class:`EvaluationService`."""

    def __init__(self, service: "EvaluationService", job: Any) -> None:
        self._service = service
        self._job = job
        self.id = job.id
        self.label = job.label
        self.kind = job.kind.value

    @property
    def status(self) -> JobStatus:
        return JobStatus(self._job.status.value)

    @property
    def error(self) -> BaseException | None:
        return self._job.error

    def wait(self, timeout: float | None = None) -> bool:
        return self._job.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        return self._job.result(timeout)

    def cancel(self) -> bool:
        try:
            return self._service.cancel(self.id)
        except KeyError:
            # Retired from the service's history; terminal either way.
            return False

    def add_done_callback(self, fn: Callable[[JobHandle], None]) -> None:
        self._job.add_done_callback(lambda _job: fn(self))


class RemoteJobHandle(JobHandle):
    """A job living on a remote ``repro serve`` endpoint."""

    def __init__(self, client: "RemoteEvaluationClient", job: Any) -> None:
        self._client = client
        self._job = job
        self.id = job.id
        self.label = job.label
        self.kind = job.kind
        self._callbacks: list[Callable[[JobHandle], None]] = []
        self._callbacks_drained = False
        self._watcher: threading.Thread | None = None
        self._callback_lock = threading.Lock()

    @property
    def status(self) -> JobStatus:
        if not self._job.done:
            self._job._refresh()
        return JobStatus(self._job.status.value)

    @property
    def error(self) -> BaseException | None:
        return self._job.error

    def wait(self, timeout: float | None = None) -> bool:
        return self._job.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        return self._job.result(timeout)

    def cancel(self) -> bool:
        return self._job.cancel()

    def add_done_callback(self, fn: Callable[[JobHandle], None]) -> None:
        run_now = False
        with self._callback_lock:
            if self._callbacks_drained:
                run_now = True
            else:
                self._callbacks.append(fn)
                if self._watcher is None:
                    # Remote completion is observed by polling; one daemon
                    # watcher per handle serves every registered callback.
                    self._watcher = threading.Thread(
                        target=self._watch, name=f"repro-handle-{self.id}", daemon=True
                    )
                    self._watcher.start()
        if run_now:
            fn(self)

    def _watch(self) -> None:
        self._job.wait()
        with self._callback_lock:
            self._callbacks_drained = True
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            try:
                fn(self)
            except Exception as exc:  # noqa: BLE001 - callbacks must not kill the watcher
                event_log().emit(
                    "executor.callback_error", level="warning", job=self.id, error=repr(exc)
                )


# -- the executor protocol ---------------------------------------------------------


class Executor(ABC):
    """One submission surface over heterogeneous execution backends.

    Implementations accept the typed job specs (plus :class:`LocalCallSpec`
    where code stays in-process) and return :class:`JobHandle` futures.  Use
    as a context manager — ``close()`` releases whatever the executor owns
    (pools, an owned service); handles returned earlier stay readable.
    """

    #: Short backend name, used in ``stats()`` and error messages.
    name: str = "executor"

    @abstractmethod
    def submit(self, spec: Any, label: str = "") -> JobHandle:
        """Submit one job spec; returns immediately with its handle."""

    def map(self, specs: Iterable[Any], labels: Sequence[str] | None = None) -> list[JobHandle]:
        """Submit many specs; one handle per spec, in submission order."""
        specs = list(specs)
        labels = list(labels or [])
        labels += [""] * (len(specs) - len(labels))
        return [self.submit(spec, label) for spec, label in zip(specs, labels)]

    def capabilities(self) -> frozenset[str]:
        """Spec kinds this backend accepts (wire-schema names + ``local_call``)."""
        return LOCAL_SPEC_KINDS

    def stats(self) -> dict[str, Any]:
        """Backend counters for health endpoints and tests."""
        return {"executor": self.name}

    def close(self) -> None:
        """Release owned resources; no-op by default."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InlineExecutor(Executor):
    """Run every spec synchronously at submission, in the calling thread.

    ``submit`` returns an already-completed handle; exceptions raised by the
    *work* are captured on the handle (submission-time validation errors —
    an invalid sweep grid, an unknown wire function — still raise at
    ``submit``, matching the queueing backends).  :meth:`map` batches all
    simulation and sweep specs of one call through a single
    :func:`~repro.serve.scheduler.run_batched` pass, so shared baselines and
    duplicate design points coalesce exactly as they do on the service.
    """

    name = "inline"

    def __init__(self, cache: "ReportCache | None" = None) -> None:
        self.cache = cache
        self._ids = itertools.count(1)
        self._submitted = 0
        self._failed = 0

    def submit(self, spec: Any, label: str = "") -> JobHandle:
        return self.map([spec], [label])[0]

    def map(self, specs: Iterable[Any], labels: Sequence[str] | None = None) -> list[JobHandle]:
        specs = list(specs)
        labels = list(labels or [])
        labels += [""] * (len(specs) - len(labels))

        # Plan phase: expand simulation-shaped specs into requests so one
        # batched pass covers them all.  plan() failures (invalid grids,
        # unknown backends) raise here — submission-time, like the service.
        prepared: list[tuple[Any, str, str, list | None]] = []
        requests: list[Any] = []
        for spec, label in zip(specs, labels):
            kind = spec_kind(spec)
            if kind == "simulate_spec":
                spec_requests = [_simulate_request(spec)]
            elif kind == "sweep_spec":
                spec_requests = spec.plan()
            else:
                spec_requests = None
                # Unknown wire-function names raise here, at submission —
                # the same contract as the queueing backends.
                if kind == LOCAL_CALL_KIND and isinstance(spec.fn, str):
                    from ..serve.specs import resolve_wire_function

                    resolve_wire_function(spec.fn)
                elif kind == "callable_spec":
                    spec.resolve()
            prepared.append((spec, label or _default_label(spec), kind, spec_requests))
            if spec_requests:
                requests.extend(spec_requests)

        simulation_error: BaseException | None = None
        reports: list = []
        if requests:
            from ..serve.scheduler import run_batched

            try:
                # Raw (possibly columnar) entries: sweep results stay lazy,
                # simulate handles materialize their one report below.
                reports = run_batched(requests, cache=self.cache, materialize=False)
            # repro: allow[REP009] error is recorded on every affected handle below
            except Exception as exc:  # noqa: BLE001 - recorded per handle below
                simulation_error = exc

        handles: list[JobHandle] = []
        cursor = 0
        for spec, label, kind, spec_requests in prepared:
            self._submitted += 1
            job_id = f"inline-{next(self._ids):04d}"
            if spec_requests is not None:
                chunk = reports[cursor : cursor + len(spec_requests)]
                cursor += len(spec_requests)
                if simulation_error is not None:
                    value, error = None, simulation_error
                elif kind == "simulate_spec":
                    from .columnar import ensure_report

                    value, error = ensure_report(chunk[0]), None
                else:
                    value, error = _sweep_result(spec, chunk), None
            else:
                try:
                    value, error = execute_spec(spec, cache=self.cache), None
                # repro: allow[REP009] exception is captured as the handle's error sentinel
                except Exception as exc:  # noqa: BLE001 - captured on the handle
                    value, error = None, exc
            if error is not None:
                self._failed += 1
            handles.append(CompletedHandle(job_id, label, kind, value=value, error=error))
        return handles

    def stats(self) -> dict[str, Any]:
        return {"executor": self.name, "submitted": self._submitted, "failed": self._failed}


class PoolExecutor(Executor):
    """Fan specs out over a :mod:`concurrent.futures` thread or process pool.

    ``kind="thread"`` suits the NumPy-heavy evaluation paths (the array work
    releases the GIL) and shares ``cache`` across workers; ``kind="process"``
    suits GIL-bound sampling work and requires picklable specs — verified at
    submission, so mistakes fail fast with an actionable message instead of
    a pool traceback.  Handles support :meth:`JobHandle.cancel` while the
    work is still queued behind busy workers.
    """

    def __init__(
        self,
        kind: str = "thread",
        max_workers: int | None = None,
        cache: "ReportCache | None" = None,
    ) -> None:
        if kind not in ("thread", "process"):
            raise ValueError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.kind = kind
        self.name = kind
        self.cache = cache
        pool_cls = ThreadPoolExecutor if kind == "thread" else ProcessPoolExecutor
        self._pool = pool_cls(max_workers=max_workers)
        self._ids = itertools.count(1)
        self._submitted = 0

    def submit(self, spec: Any, label: str = "") -> JobHandle:
        kind = spec_kind(spec)
        if self.kind == "process":
            ensure_picklable(
                spec,
                "the process pool executor requires a picklable case function and "
                "plain-data job specs: pass a module-level function taking plain-data "
                "arguments, or use a thread/inline executor for closures over live objects",
            )
            # Worker processes cannot share this process's report cache; they
            # fall back to their own (and the artifact store, when configured).
            future = self._pool.submit(execute_spec, spec)
        else:
            future = self._pool.submit(execute_spec, spec, self.cache)
        self._submitted += 1
        job_id = f"{self.kind}-{next(self._ids):04d}"
        return FutureHandle(job_id, label or _default_label(spec), kind, future)

    def stats(self) -> dict[str, Any]:
        return {"executor": f"pool:{self.kind}", "submitted": self._submitted}

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ServiceExecutor(Executor):
    """Submit specs to an in-process :class:`EvaluationService`.

    Wraps an existing ``service`` (left running at :meth:`close`), or owns a
    fresh one built from ``cache`` / ``max_workers`` / ``process_workers``
    (shut down at :meth:`close`).  Jobs share the service's coalescing
    scheduler, single-flight registry and worker pools with every other
    client of that service.
    """

    name = "service"

    def __init__(
        self,
        service: "EvaluationService | None" = None,
        *,
        cache: "ReportCache | None" = None,
        max_workers: int | None = None,
        process_workers: int | None = None,
    ) -> None:
        self._owned = service is None
        if service is None:
            from ..serve.service import EvaluationService

            service = EvaluationService(
                cache=cache, max_workers=max_workers, process_workers=process_workers
            )
        self.service = service

    def submit(self, spec: Any, label: str = "") -> JobHandle:
        if isinstance(spec, LocalCallSpec):
            fn = spec.fn
            if isinstance(fn, str):
                from ..serve.specs import resolve_wire_function

                fn = resolve_wire_function(fn)
            job = self.service.submit_callable(
                fn, args=spec.args, kwargs=spec.kwargs, label=label or spec.default_label()
            )
        else:
            spec_kind(spec)  # reject non-specs with the uniform message
            job = self.service.submit_spec(spec, label=label)
        return ServiceJobHandle(self.service, job)

    def stats(self) -> dict[str, Any]:
        return {"executor": self.name, **self.service.service_stats()}

    def close(self) -> None:
        if self._owned:
            self.service.close()


class RemoteExecutor(Executor):
    """Submit specs to a remote ``repro serve`` endpoint over the typed wire.

    Wraps an existing :class:`RemoteEvaluationClient` (borrowed: left open at
    :meth:`close`, mirroring :class:`ServiceExecutor`) or builds an owned one
    from ``endpoint``.  Only wire specs cross: a :class:`LocalCallSpec` is
    accepted when its function is a registered wire function (or its name),
    and rejected with the registration recipe otherwise.
    :meth:`capabilities` is discovered from the server's ``GET /schemas``,
    so callers can probe which spec kinds a given deployment accepts.
    """

    name = "remote"

    def __init__(
        self,
        endpoint: str | None = None,
        client: "RemoteEvaluationClient | None" = None,
        **client_options: Any,
    ) -> None:
        self._owned = client is None
        if client is None:
            if endpoint is None:
                raise ValueError(
                    "RemoteExecutor needs endpoint='http://host:port' (or client=...)"
                )
            from ..serve.client import RemoteEvaluationClient

            client = RemoteEvaluationClient(endpoint, **client_options)
        self.client = client

    def submit(self, spec: Any, label: str = "") -> JobHandle:
        if isinstance(spec, LocalCallSpec):
            from ..serve.specs import CallableJobSpec, require_wire_name

            label = label or spec.default_label()
            spec = CallableJobSpec(
                function=require_wire_name(spec.fn),
                args=spec.args,
                kwargs=dict(spec.kwargs),
                pool="thread",
            )
        else:
            spec_kind(spec)
        job = self.client.submit_spec(spec, label=label or _default_label(spec))
        return RemoteJobHandle(self.client, job)

    def capabilities(self) -> frozenset[str]:
        schemas = self.client.schemas().get("schemas", {})
        return frozenset(kind for kind in WIRE_SPEC_KINDS if kind in schemas)

    def stats(self) -> dict[str, Any]:
        health = self.client.health()
        return {"executor": self.name, **health.get("service", {})}

    def close(self) -> None:
        if self._owned:
            self.client.close()


# -- executor registry -------------------------------------------------------------

_EXECUTOR_FACTORIES: dict[str, Callable[..., Executor]] = {}


def register_executor(name: str, factory: Callable[..., Executor]) -> Callable[..., Executor]:
    """Register an executor backend under ``name`` for :func:`resolve_executor`.

    ``factory(**options)`` must return an :class:`Executor`; it receives the
    caller's keyword options (``max_workers``, ``cache``, ``service``,
    ``endpoint`` from the built-in call sites) and should ignore what it
    does not need.  Re-registering a name rebinds it, so third-party
    backends can override the built-ins in tests.
    """
    _EXECUTOR_FACTORIES[name] = factory
    return factory


def executor_names() -> tuple[str, ...]:
    """Registered executor names, sorted (for error messages and CLIs)."""
    return tuple(sorted(_EXECUTOR_FACTORIES))


def resolve_executor(name: str, **options: Any) -> Executor:
    """Build the executor registered under ``name`` with the given options."""
    try:
        factory = _EXECUTOR_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; registered executors: {list(executor_names())} "
            "(see repro.core.execution.register_executor)"
        ) from None
    return factory(**options)


def _make_inline(cache: Any = None, **_: Any) -> Executor:
    return InlineExecutor(cache=cache)


def _make_thread(max_workers: Any = None, cache: Any = None, **_: Any) -> Executor:
    return PoolExecutor("thread", max_workers=max_workers, cache=cache)


def _make_process(max_workers: Any = None, cache: Any = None, **_: Any) -> Executor:
    return PoolExecutor("process", max_workers=max_workers, cache=cache)


def _make_service(
    service: Any = None, cache: Any = None, max_workers: Any = None, **_: Any
) -> Executor:
    return ServiceExecutor(service=service, cache=cache, max_workers=max_workers)


def _make_remote(endpoint: Any = None, service: Any = None, **_: Any) -> Executor:
    # run_sweep's legacy surface passed an existing RemoteEvaluationClient via
    # its ``service=`` parameter; honor that spelling here.
    return RemoteExecutor(endpoint=endpoint, client=service)


def _make_worker_pool(cache: Any = None, max_workers: Any = None, **_: Any) -> Executor:
    # A self-contained fleet: worker-dispatch service + loopback HTTP server
    # + N in-process workers pulling over the real lease/heartbeat protocol.
    from ..serve.worker import WorkerPoolExecutor

    return WorkerPoolExecutor(num_workers=max_workers or 2, cache=cache)


register_executor("inline", _make_inline)
register_executor("serial", _make_inline)  # legacy run_sweep spelling
register_executor("thread", _make_thread)
register_executor("process", _make_process)
register_executor("service", _make_service)
register_executor("remote", _make_remote)
register_executor("worker-pool", _make_worker_pool)
