"""Temporal per-channel sparsity: measurement, traces and channel grouping.

Section III-C of the paper observes that ReLU-based diffusion models exhibit
*temporal per-channel sparsity*: each activation channel is either mostly
zero or mostly non-zero, and which channels are sparse changes across
diffusion time steps (Fig. 7).  This module extracts that structure from the
NumPy U-Net:

* :func:`collect_sparsity_trace` runs the sampler with activation recording
  enabled and captures, for every time step and every Conv+Act convolution,
  the per-input-channel zero fraction.
* :class:`TemporalSparsityTrace` stores the result together with the layer
  geometry, and converts into accelerator workload traces
  (:func:`trace_to_workloads`).
* :func:`sparsity_map` renders the channel x time-step binary map of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accelerator.workload import ConvLayerWorkload
from ..diffusion.edm import EDMDenoiser
from ..diffusion.sampler import SamplerConfig, sample
from ..nn.unet import BLOCK_CONV, EDMUNet
from .policy import QuantizationPolicy


@dataclass(frozen=True)
class TracedLayer:
    """Geometry of one traced convolution layer."""

    name: str
    block_name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    height: int
    width: int


@dataclass
class TemporalSparsityTrace:
    """Per-time-step, per-layer, per-channel activation sparsity."""

    layers: list[TracedLayer]
    steps: list[dict[str, np.ndarray]] = field(default_factory=list)
    zero_tolerance_rel: float = 0.0

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def layer(self, name: str) -> TracedLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"unknown traced layer {name!r}; available: {self.layer_names()}")

    def sparsity_matrix(self, layer_name: str) -> np.ndarray:
        """(channels, time steps) matrix of zero fractions for one layer (Fig. 7 data)."""
        layer = self.layer(layer_name)
        matrix = np.zeros((layer.in_channels, self.num_steps))
        for t, step in enumerate(self.steps):
            matrix[:, t] = step[layer_name]
        return matrix

    def average_sparsity(self) -> float:
        """Average activation sparsity across all layers and time steps."""
        values = [float(np.mean(s)) for step in self.steps for s in step.values()]
        return float(np.mean(values)) if values else 0.0

    def per_layer_average(self) -> dict[str, float]:
        """Average sparsity per layer across time steps."""
        result: dict[str, float] = {}
        for layer in self.layers:
            values = [float(np.mean(step[layer.name])) for step in self.steps]
            result[layer.name] = float(np.mean(values)) if values else 0.0
        return result

    def channel_switch_rate(self, layer_name: str, threshold: float = 0.30) -> float:
        """Fraction of channels whose dense/sparse classification changes per step.

        Quantifies the *temporal* aspect of the sparsity pattern: a nonzero
        switch rate is what makes infrequent sparsity updates lose speed-up
        (Fig. 11, right).
        """
        matrix = self.sparsity_matrix(layer_name) >= threshold
        if matrix.shape[1] < 2:
            return 0.0
        switches = np.mean(matrix[:, 1:] != matrix[:, :-1])
        return float(switches)


def _per_channel_zero_fraction(activation: np.ndarray, zero_tolerance_rel: float) -> np.ndarray:
    """Per-channel zero fraction of an NCHW activation with a relative tolerance.

    ``zero_tolerance_rel`` expresses the zero threshold as a fraction of the
    tensor's maximum magnitude; 1/(2*qmax) models values that a UINT4
    quantizer would round to the zero code.
    """
    tol = 0.0
    if zero_tolerance_rel > 0:
        tol = zero_tolerance_rel * float(np.max(np.abs(activation))) if activation.size else 0.0
    moved = np.moveaxis(activation, 1, 0)
    flat = moved.reshape(moved.shape[0], -1)
    return np.count_nonzero(np.abs(flat) <= tol, axis=1) / flat.shape[1]


def traced_layers_for_model(model: EDMUNet) -> list[TracedLayer]:
    """The Conv+Act convolutions of a U-Net, i.e. the layers SQ-DM accelerates."""
    layers = []
    for info in model.block_infos():
        height, width = info.spatial
        for idx, conv in enumerate(info.block.conv_layers()):
            layers.append(
                TracedLayer(
                    name=f"unet.{info.name}.conv{idx}",
                    block_name=info.name,
                    in_channels=conv.in_channels,
                    out_channels=conv.out_channels,
                    kernel_size=conv.kernel_size,
                    height=height,
                    width=width,
                )
            )
    return layers


def collect_sparsity_trace(
    denoiser: EDMDenoiser,
    image_shape: tuple[int, int, int],
    sampler_config: SamplerConfig | None = None,
    num_samples: int = 2,
    zero_tolerance_rel: float = 0.0,
    labels: np.ndarray | None = None,
) -> TemporalSparsityTrace:
    """Run a sampling trajectory and record per-channel conv-input sparsity.

    The recorded tensors are the outputs of each block's non-linearities
    (``act0``/``act1``), which are exactly the inputs of ``conv0``/``conv1``
    — the operands whose zeros the SPE skips.
    """
    model = denoiser.unet
    layers = traced_layers_for_model(model)
    trace = TemporalSparsityTrace(layers=layers, zero_tolerance_rel=zero_tolerance_rel)

    def snapshot(step_index: int, sigma: float, x: np.ndarray) -> None:
        step_record: dict[str, np.ndarray] = {}
        for info in model.block_infos():
            block = info.block
            for idx, act in enumerate((block.act0, block.act1)):
                name = f"unet.{info.name}.conv{idx}"
                if act.last_output is None:
                    step_record[name] = np.zeros(trace.layer(name).in_channels)
                else:
                    step_record[name] = _per_channel_zero_fraction(
                        act.last_output, zero_tolerance_rel
                    )
        trace.steps.append(step_record)

    model.set_recording(True)
    try:
        sample(
            denoiser,
            num_samples,
            image_shape,
            sampler_config or SamplerConfig(),
            labels=labels,
            step_callback=snapshot,
        )
    finally:
        model.set_recording(False)
    return trace


def trace_to_workloads(
    trace: TemporalSparsityTrace, policy: QuantizationPolicy | None = None, default_bits: int = 16
) -> list[list[ConvLayerWorkload]]:
    """Convert a sparsity trace into an accelerator workload trace.

    Each traced conv layer becomes one :class:`ConvLayerWorkload` per time
    step, with the weight/activation precision taken from ``policy`` (or
    ``default_bits`` when no policy is given).  The per-layer geometry and
    precision are resolved once into a template workload which is then
    re-stamped with each step's sparsity via
    :meth:`ConvLayerWorkload.replace`.
    """
    templates: list[ConvLayerWorkload] = []
    for layer in trace.layers:
        if policy is not None:
            weight_bits, act_bits = policy.bits_for_layer(layer.name)
        else:
            weight_bits = act_bits = default_bits
        templates.append(
            ConvLayerWorkload(
                name=layer.name,
                in_channels=layer.in_channels,
                out_channels=layer.out_channels,
                kernel_size=layer.kernel_size,
                out_height=layer.height,
                out_width=layer.width,
                weight_bits=weight_bits,
                act_bits=act_bits,
                block_type=BLOCK_CONV,
            )
        )
    return [
        [
            template.replace(channel_sparsity=np.asarray(step[template.name], dtype=np.float64))
            for template in templates
        ]
        for step in trace.steps
    ]


def sparsity_map(
    trace: TemporalSparsityTrace, layer_name: str, threshold: float = 0.5
) -> np.ndarray:
    """Binary channel x time-step map: 1 where a channel is mostly zero (Fig. 7).

    The paper renders zero values in black and non-zero in white per pixel;
    aggregated per channel, a channel appears "black" at a time step when
    most of its values are zero, which is what this map encodes.
    """
    matrix = trace.sparsity_matrix(layer_name)
    return (matrix >= threshold).astype(np.int8)
