"""Versioned, JSON-native wire codec for everything that crosses a boundary.

Until now every rich payload leaving a process — artifacts on disk, job
payloads over HTTP, results coming back — crossed the boundary as a pickle.
Pickle couples both ends to one codebase revision and executes arbitrary
code on load, which rules out untrusted clients, non-Python producers and
long-lived stores.  Large acquisition fleets survive heterogeneous
producers by doing the opposite: the wire format is a *versioned,
self-describing schema*, and every reader validates the version before
touching the payload.  This module is that layer for the repository.

Concepts
--------

**Schema registry.**  :func:`register_schema` binds ``(name, version)`` to an
``encode``/``decode`` pair (and optionally the Python type it serializes, so
:func:`encode` can dispatch on ``type(obj)``).  Versions are explicit:
decoding an envelope whose name or version is not registered raises
:class:`UnknownSchemaError` with the known alternatives in the message —
never a silent misparse.  :func:`register_dataclass` derives the field-wise
codec for plain dataclasses, which covers most of the repository's types.

**Envelopes.**  An encoded object is a JSON object tagged with a reserved
``"$schema"`` key::

    {"$schema": "accelerator_config@1", "name": "sqdm", "num_dpe": 1, ...}

Envelopes nest: a ``simulation_report@1`` contains ``step_result@1``
objects, which contain ``energy_breakdown@1`` objects, and so on — every
level is independently self-describing.

**Values.**  Inside an envelope, plain JSON values pass through unchanged.
Three reserved markers cover the rest:

* ``{"$ndarray": {"dtype": ..., "shape": ..., "data": <base64>}}`` — a NumPy
  array (decoders also accept a plain JSON list wherever an array is
  expected, so hand-written payloads — e.g. a curl request — need no
  base64).
* ``{"$bytes": <base64>}`` — a bytes value.
* ``{"$dict": [[key, value], ...]}`` — a mapping whose keys are not plain
  JSON-safe strings (non-string keys, or keys starting with ``"$"``).

**Binary sidecars.**  Base64 inflates arrays by a third, which matters for
artifacts holding megabytes of sparsity data.  :func:`encode` therefore
accepts an ``arrays`` list: when given, array/bytes payloads are appended to
it as raw buffers and the JSON carries ``{"$ndarray": {..., "buffer": i}}``
references instead.  :func:`decode` takes the same buffers back.  The
artifact store uses this to write one JSON header plus concatenated binary
sidecars per file; the HTTP layer leaves arrays inline so the wire stays
pure JSON.

Round-trip equality is part of the contract: for every registered schema,
``encode(decode(encode(x))) == encode(x)`` (see :func:`roundtrip_equal` and
``tests/test_codec.py``, which enforces it for each registered name).
"""

from __future__ import annotations

import base64
import json
import threading
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

#: Reserved envelope/value markers.  No schema field may start with ``"$"``.
SCHEMA_KEY = "$schema"
NDARRAY_KEY = "$ndarray"
BYTES_KEY = "$bytes"
DICT_KEY = "$dict"

#: Version of the wire protocol as a whole (envelope + value markers), used
#: by the HTTP layer for content negotiation.  Individual schemas carry
#: their own versions on top of this.
WIRE_VERSION = 1

#: Schema name used for bare JSON-native payloads (dicts, lists, scalars,
#: bytes and arrays) that have no dataclass of their own.
VALUE_SCHEMA = "value"


class SchemaError(ValueError):
    """A payload cannot be encoded or decoded under the registered schemas."""


class UnknownSchemaError(SchemaError):
    """An envelope names a schema name or version this process does not know."""


@dataclass(frozen=True)
class Schema:
    """One registered (name, version) codec."""

    name: str
    version: int
    encode: Callable[[Any, "Encoder"], dict]
    decode: Callable[[Mapping[str, Any], "Decoder"], Any]
    type: type | None = None

    @property
    def tag(self) -> str:
        return f"{self.name}@{self.version}"


_REGISTRY: dict[tuple[str, int], Schema] = {}
_LATEST: dict[str, Schema] = {}
_BY_TYPE: dict[type, Schema] = {}
_REGISTRY_LOCK = threading.Lock()
_BUILTINS_LOCK = threading.RLock()
_BUILTINS_LOADED = False


def _ensure_builtin_schemas() -> None:
    """Import the module that registers the core schemas (once).

    Only :mod:`repro.core.schemas` loads here — core never imports the serve
    package.  The job-spec schemas live with the service layer and register
    when :mod:`repro.serve.specs` is imported, which every serve entry point
    (service, HTTP server, client, CLI) does on its own.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _BUILTINS_LOCK:
        if _BUILTINS_LOADED:
            return
        import repro.core.schemas  # noqa: F401  (registers core/accelerator/diffusion)

        _BUILTINS_LOADED = True


def register_schema(
    name: str,
    version: int,
    encode: Callable[[Any, "Encoder"], dict],
    decode: Callable[[Mapping[str, Any], "Decoder"], Any],
    type: type | None = None,  # noqa: A002 - mirrors the envelope's semantics
) -> Schema:
    """Register one ``(name, version)`` codec pair.

    ``encode(obj, ctx) -> dict`` produces the envelope's fields;
    ``decode(fields, ctx) -> obj`` inverts it.  When ``type`` is given,
    :func:`encode` dispatches instances of that type to this schema (the
    highest registered version wins).  Re-registering an existing
    ``(name, version)`` is an error — bump the version instead.
    """
    if not name or "@" in name or name.startswith("$"):
        raise ValueError(f"invalid schema name {name!r}")
    if version < 1:
        raise ValueError(f"schema version must be >= 1, got {version}")
    schema = Schema(name=name, version=version, encode=encode, decode=decode, type=type)
    with _REGISTRY_LOCK:
        if (name, version) in _REGISTRY:
            raise ValueError(f"schema {schema.tag} is already registered; bump the version")
        _REGISTRY[(name, version)] = schema
        latest = _LATEST.get(name)
        if latest is None or version > latest.version:
            _LATEST[name] = schema
            if type is not None:
                _BY_TYPE[type] = schema
    return schema


def schema_for(name: str, version: int | None = None) -> Schema:
    """Look a schema up by name (latest version) or (name, version) exactly.

    Raises :class:`UnknownSchemaError` naming the known schemas/versions, so
    a client speaking a newer (or misspelled) schema gets an actionable
    rejection instead of a misparse.
    """
    _ensure_builtin_schemas()
    with _REGISTRY_LOCK:
        if version is None:
            schema = _LATEST.get(name)
            if schema is None:
                known = sorted(_LATEST)
                raise UnknownSchemaError(f"unknown schema {name!r}; known schemas: {known}")
            return schema
        schema = _REGISTRY.get((name, version))
        if schema is not None:
            return schema
        versions = sorted(v for (n, v) in _REGISTRY if n == name)
    if versions:
        raise UnknownSchemaError(
            f"unknown version {version} of schema {name!r}; "
            f"this process knows version(s) {versions}"
        )
    known = sorted({n for (n, _) in _REGISTRY})
    raise UnknownSchemaError(f"unknown schema {name!r}; known schemas: {known}")


def registered_schemas() -> dict[str, list[int]]:
    """Every registered schema name with its known versions (for ``GET /schemas``)."""
    _ensure_builtin_schemas()
    with _REGISTRY_LOCK:
        out: dict[str, list[int]] = {}
        for name, version in sorted(_REGISTRY):
            out.setdefault(name, []).append(version)
        return out


def _parse_tag(tag: Any) -> tuple[str, int]:
    if not isinstance(tag, str) or "@" not in tag:
        raise SchemaError(f"malformed {SCHEMA_KEY} tag {tag!r}; expected '<name>@<version>'")
    name, _, version_text = tag.rpartition("@")
    try:
        version = int(version_text)
    except ValueError:
        raise SchemaError(f"malformed schema version in tag {tag!r}") from None
    return name, version


# -- encoding ---------------------------------------------------------------------


class Encoder:
    """Encoding context: value recursion plus the optional binary sidecar sink."""

    def __init__(self, arrays: list[bytes] | None = None) -> None:
        self.arrays = arrays

    # -- leaves ---------------------------------------------------------------

    def _pack_buffer(self, raw: bytes) -> dict[str, Any] | str:
        if self.arrays is None:
            return base64.b64encode(raw).decode("ascii")
        self.arrays.append(raw)
        return {"buffer": len(self.arrays) - 1}

    def ndarray(self, array: np.ndarray) -> dict[str, Any]:
        array = np.asarray(array)
        if array.dtype == object:
            raise SchemaError("object-dtype arrays are not wire-encodable")
        raw = np.ascontiguousarray(array).tobytes()
        ref: dict[str, Any] = {"dtype": array.dtype.str, "shape": list(array.shape)}
        packed = self._pack_buffer(raw)
        if isinstance(packed, str):
            ref["data"] = packed
        else:
            ref.update(packed)
        return {NDARRAY_KEY: ref}

    def bytes(self, raw: bytes) -> dict[str, Any]:
        return {BYTES_KEY: self._pack_buffer(bytes(raw))}

    # -- recursion ------------------------------------------------------------

    def encode(self, obj: Any, name: str | None = None, version: int | None = None) -> dict:
        """Encode one object as a tagged envelope (dispatching on type)."""
        _ensure_builtin_schemas()
        if name is None:
            schema = _BY_TYPE.get(type(obj))
            if schema is None:
                if _is_plain_value(obj):
                    schema = schema_for(VALUE_SCHEMA)
                else:
                    raise SchemaError(
                        f"no schema registered for {type(obj).__name__}; "
                        "register one with repro.core.codec.register_schema "
                        "(or register_dataclass)"
                    )
        else:
            schema = schema_for(name, version)
        fields = schema.encode(obj, self)
        bad = [key for key in fields if key.startswith("$")]
        if bad:
            raise SchemaError(f"schema {schema.tag} produced reserved field names {bad}")
        return {SCHEMA_KEY: schema.tag, **fields}

    def value(self, value: Any) -> Any:
        """Encode one value (scalar, container, array or registered object)."""
        if value is None or isinstance(value, (bool, str)):
            return value
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, (bytes, bytearray)):
            return self.bytes(bytes(value))
        if isinstance(value, np.ndarray):
            return self.ndarray(value)
        if isinstance(value, (list, tuple)):
            return [self.value(item) for item in value]
        if isinstance(value, Mapping):
            plain = all(
                isinstance(key, str) and not key.startswith("$") for key in value
            )
            if plain:
                return {key: self.value(item) for key, item in value.items()}
            return {
                DICT_KEY: [[self.value(key), self.value(item)] for key, item in value.items()]
            }
        _ensure_builtin_schemas()
        if type(value) in _BY_TYPE:
            return self.encode(value)
        raise SchemaError(
            f"value of type {type(value).__name__} is not wire-encodable; "
            "register a schema for it or pass plain data"
        )


def _is_plain_value(obj: Any) -> bool:
    return isinstance(
        obj,
        (type(None), bool, int, float, str, bytes, bytearray, list, tuple, dict, np.ndarray,
         np.generic),
    )


# -- decoding ---------------------------------------------------------------------


class Decoder:
    """Decoding context: value recursion plus the optional sidecar buffers."""

    def __init__(self, buffers: Sequence[bytes] | None = None) -> None:
        self.buffers = buffers

    def _unpack_buffer(self, payload: Any) -> bytes:
        """Resolve a binary payload: inline base64, or a sidecar buffer index."""
        if isinstance(payload, str):
            try:
                return base64.b64decode(payload.encode("ascii"), validate=True)
            except Exception as exc:
                raise SchemaError(f"invalid base64 payload: {exc}") from None
        index = payload.get("buffer") if isinstance(payload, Mapping) else None
        if not isinstance(index, int) or isinstance(index, bool):
            raise SchemaError(
                f"binary payload needs base64 data or a 'buffer' index, got {payload!r}"
            )
        if self.buffers is None or not 0 <= index < len(self.buffers):
            have = 0 if self.buffers is None else len(self.buffers)
            raise SchemaError(f"binary buffer {index} out of range ({have} sidecar buffer(s))")
        return self.buffers[index]

    def ndarray(self, doc: Any, dtype: Any = None) -> np.ndarray:
        """Decode an array reference; plain JSON lists are accepted as arrays."""
        if isinstance(doc, (list, tuple)):
            return np.asarray(doc, dtype=dtype)
        if not (isinstance(doc, Mapping) and NDARRAY_KEY in doc):
            raise SchemaError(
                f"expected an array ({NDARRAY_KEY} or list), got {type(doc).__name__}"
            )
        ref = doc[NDARRAY_KEY]
        if not isinstance(ref, Mapping):
            raise SchemaError(f"malformed {NDARRAY_KEY} reference: {ref!r}")
        try:
            declared = np.dtype(ref["dtype"])
            shape = tuple(int(dim) for dim in ref["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed {NDARRAY_KEY} reference: {exc!r}") from None
        raw = self._unpack_buffer(ref["data"] if "data" in ref else ref)
        try:
            array = np.frombuffer(raw, dtype=declared).reshape(shape).copy()
        except ValueError as exc:
            raise SchemaError(f"array payload does not match dtype/shape: {exc}") from None
        return array.astype(dtype) if dtype is not None else array

    def decode(self, doc: Any) -> Any:
        """Decode one tagged envelope back into its object."""
        if not (isinstance(doc, Mapping) and SCHEMA_KEY in doc):
            raise SchemaError(
                f"expected a schema envelope with a {SCHEMA_KEY!r} tag, "
                f"got {type(doc).__name__}"
            )
        name, version = _parse_tag(doc[SCHEMA_KEY])
        schema = schema_for(name, version)
        fields = {key: item for key, item in doc.items() if key != SCHEMA_KEY}
        try:
            return schema.decode(fields, self)
        except SchemaError:
            raise
        except (TypeError, ValueError, KeyError) as exc:
            raise SchemaError(f"invalid {schema.tag} payload: {exc!r}") from exc

    def value(self, doc: Any) -> Any:
        """Decode one value produced by :meth:`Encoder.value`."""
        if isinstance(doc, Mapping):
            if SCHEMA_KEY in doc:
                return self.decode(doc)
            if NDARRAY_KEY in doc:
                return self.ndarray(doc)
            if BYTES_KEY in doc:
                return self._unpack_buffer(doc[BYTES_KEY])
            if DICT_KEY in doc:
                pairs = doc[DICT_KEY]
                if not isinstance(pairs, list):
                    raise SchemaError(f"malformed {DICT_KEY} payload: {pairs!r}")
                out = {}
                for pair in pairs:
                    if not (isinstance(pair, (list, tuple)) and len(pair) == 2):
                        raise SchemaError(f"malformed {DICT_KEY} entry: {pair!r}")
                    key = self.value(pair[0])
                    if isinstance(key, list):
                        key = tuple(key)
                    out[key] = self.value(pair[1])
                return out
            return {key: self.value(item) for key, item in doc.items()}
        if isinstance(doc, list):
            return [self.value(item) for item in doc]
        return doc


# -- dataclass helper --------------------------------------------------------------


def register_dataclass(
    cls: type,
    name: str,
    version: int = 1,
    exclude: Iterable[str] = (),
    decode_hook: Callable[[dict], dict] | None = None,
) -> Schema:
    """Derive and register the field-wise schema of a plain dataclass.

    Every public field is encoded with the generic value rules (nested
    registered dataclasses become nested envelopes, arrays become
    ``$ndarray`` references).  Decoding follows the skew contract large
    heterogeneous fleets need: field names this revision does not define are
    *tolerated and ignored* — a newer writer of the same schema version may
    add minor fields without breaking older readers — while an unknown
    ``$schema`` *version* is still rejected up front (with the known
    alternatives) by :func:`schema_for`, because a version bump signals an
    incompatible layout, not an addition.  ``decode_hook`` may normalize the
    decoded kwargs (e.g. coerce key types) before construction.
    """
    excluded = set(exclude)
    names = [
        f.name
        for f in dataclass_fields(cls)
        if f.name not in excluded and not f.name.startswith("_")
    ]
    known = set(names)

    def enc(obj: Any, ctx: Encoder) -> dict:
        return {field: ctx.value(getattr(obj, field)) for field in names}

    def dec(doc: Mapping[str, Any], ctx: Decoder) -> Any:
        # Unknown minor fields (a newer same-version writer) are dropped, not
        # fatal; decoding only what this revision defines keeps old readers
        # working across rolling upgrades.
        kwargs = {key: ctx.value(item) for key, item in doc.items() if key in known}
        if decode_hook is not None:
            kwargs = decode_hook(kwargs)
        return cls(**kwargs)

    return register_schema(name, version, enc, dec, type=cls)


# -- module-level convenience ------------------------------------------------------


def encode(
    obj: Any,
    name: str | None = None,
    version: int | None = None,
    arrays: list[bytes] | None = None,
) -> dict:
    """Encode ``obj`` as a schema envelope.

    Dispatches on ``type(obj)`` unless ``name`` pins a schema explicitly
    (needed for alias types like ``workload_trace``, which is a plain list).
    When ``arrays`` is a list, binary payloads land there as sidecar buffers
    instead of inline base64.
    """
    return Encoder(arrays=arrays).encode(obj, name=name, version=version)


def decode(doc: Mapping[str, Any], buffers: Sequence[bytes] | None = None) -> Any:
    """Decode a schema envelope (with its sidecar ``buffers``, if any)."""
    return Decoder(buffers=buffers).decode(doc)


def encode_value(value: Any, arrays: list[bytes] | None = None) -> Any:
    """Encode one bare value (for args/kwargs and other non-envelope slots)."""
    return Encoder(arrays=arrays).value(value)


def decode_value(doc: Any, buffers: Sequence[bytes] | None = None) -> Any:
    """Inverse of :func:`encode_value`."""
    return Decoder(buffers=buffers).value(doc)


def dumps(obj: Any, name: str | None = None) -> str:
    """Encode to a JSON string (arrays inline, fit for the HTTP wire)."""
    return json.dumps(encode(obj, name=name), sort_keys=True)


def loads(text: str | bytes) -> Any:
    """Decode an object from its :func:`dumps` JSON string."""
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise SchemaError(f"payload is not valid JSON: {exc}") from None
    return decode(doc)


def roundtrip_equal(obj: Any, name: str | None = None) -> bool:
    """True when ``obj`` survives the wire: re-encoding its decode is identical.

    JSON-level comparison sidesteps ambiguous ``__eq__`` on array-bearing
    dataclasses; byte-for-byte equal envelopes imply equal objects.
    """
    first = dumps(obj, name=name)
    return dumps(loads(first), name=name) == first


# The generic passthrough schema for payloads that are already plain data
# (dicts, lists, scalars, bytes, arrays).  Registered here, not in
# repro.core.schemas, because the codec itself needs it for dispatch.
register_schema(
    VALUE_SCHEMA,
    1,
    lambda obj, ctx: {"value": ctx.value(obj)},
    lambda doc, ctx: ctx.value(doc["value"]),
)
