"""End-to-end SQ-DM pipeline.

Ties the pieces of the co-design together, mirroring the paper's flow:

1. start from a (SiLU-based) EDM workload;
2. optionally adapt it to ReLU (Sec. III-B) via calibration;
3. apply a quantization policy (uniform Table I format, or the paper's
   mixed-precision schemes of Table II);
4. generate images and measure quality with the proxy FID;
5. trace the temporal per-channel activation sparsity during sampling;
6. run the trace through the accelerator simulator against the dense
   baseline and the FP16 reference, producing the speed-up / energy numbers
   of Figs. 1 and 12.

The :class:`SQDMPipeline` caches reference FID statistics and FP16 baseline
hardware runs per workload so parameter sweeps (Tables I/II, Fig. 3,
Fig. 11) do not redo shared work.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..accelerator.config import AcceleratorConfig, dense_baseline_config, sqdm_config
from ..accelerator.simulator import SimulationReport, relative_saving, safe_speedup
from ..diffusion.fid import FeatureStatistics, FIDEvaluator
from ..diffusion.finetune import adapt_to_relu, make_calibration_batch
from ..diffusion.sampler import SamplerConfig, sample
from ..diffusion.schedule import ScheduleConfig
from ..nn.unet import EDMUNet
from ..workloads.models import Workload, load_workload
from .artifacts import ArtifactStore, default_artifact_store
from .costs import CostSummary, cost_summary
from .policy import QuantizationPolicy, mixed_precision_policy, table1_policy
from .report_cache import ReportCache
from .sparsity import TemporalSparsityTrace, collect_sparsity_trace, trace_to_workloads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .execution import Executor

#: Artifact-store namespaces used by the pipeline.
FID_STATS_ARTIFACT_KIND = "fid_stats"
TRACE_ARTIFACT_KIND = "trace"


def _policy_fingerprint(policy: QuantizationPolicy | None) -> str:
    """Stable digest of a policy's per-layer bit assignments (artifact keys)."""
    if policy is None:
        return "none"
    assignments = [
        (name, assignment.weight_bits, assignment.act_bits)
        for name, assignment in sorted(policy.assignments.items())
    ]
    return ArtifactStore.key_for(policy.name, str(policy.requires_relu), repr(assignments))


@dataclass
class PipelineConfig:
    """Evaluation-scale knobs shared by all experiments."""

    num_fid_samples: int = 24
    num_reference_samples: int = 512
    num_sampling_steps: int = 8
    num_trace_samples: int = 2
    zero_tolerance_rel: float = 1.0 / 30.0
    seed: int = 0

    def sampler_config(self) -> SamplerConfig:
        return SamplerConfig(
            schedule=ScheduleConfig(num_steps=self.num_sampling_steps), seed=self.seed
        )


@dataclass
class QuantizationEvaluation:
    """Quality + cost of one quantization scheme on one workload."""

    workload: str
    scheme: str
    fid: float
    costs: CostSummary
    relu_based: bool = False

    @property
    def compute_saving(self) -> float:
        return self.costs.compute_saving

    @property
    def memory_saving(self) -> float:
        return self.costs.memory_saving


@dataclass
class HardwareEvaluation:
    """Accelerator results for one workload under the SQ-DM policy."""

    workload: str
    sqdm_report: SimulationReport
    dense_baseline_report: SimulationReport
    fp16_dense_report: SimulationReport
    average_sparsity: float

    @property
    def sparsity_speedup(self) -> float:
        """Speed-up of DPE+SPE over the 2-DPE dense baseline at equal precision."""
        return safe_speedup(
            self.dense_baseline_report.total_cycles, self.sqdm_report.total_cycles
        )

    @property
    def sparsity_energy_saving(self) -> float:
        return relative_saving(
            self.dense_baseline_report.total_energy.total_pj,
            self.sqdm_report.total_energy.total_pj,
        )

    @property
    def quantization_speedup(self) -> float:
        """Speed-up of the quantized dense baseline over the FP16 dense baseline."""
        return safe_speedup(
            self.fp16_dense_report.total_cycles, self.dense_baseline_report.total_cycles
        )

    @property
    def total_speedup(self) -> float:
        """Total speed-up of SQ-DM over an FP16 dense accelerator (Fig. 12, bottom)."""
        return safe_speedup(self.fp16_dense_report.total_cycles, self.sqdm_report.total_cycles)


class SQDMPipeline:
    """Runs quality and hardware evaluations for one paper workload."""

    def __init__(
        self,
        workload_name: str = "cifar10",
        config: PipelineConfig | None = None,
        workload: Workload | None = None,
        artifacts: "ArtifactStore | None | str" = "auto",
        report_cache: ReportCache | None = None,
    ):
        self.config = config or PipelineConfig()
        self.workload = workload or load_workload(workload_name)
        self._artifacts_spec = artifacts
        self.report_cache = report_cache
        self._fid_evaluator: FIDEvaluator | None = None
        self._relu_unet: EDMUNet | None = None

    # -- shared infrastructure -------------------------------------------------

    @property
    def artifact_store(self) -> ArtifactStore | None:
        """Persistent store for FID statistics, traces and reports, if enabled.

        The default (``artifacts="auto"``) follows the ``REPRO_ARTIFACT_DIR``
        environment variable; pass an explicit :class:`ArtifactStore` or None
        to override.
        """
        if self._artifacts_spec == "auto":
            return default_artifact_store()
        return self._artifacts_spec

    @property
    def fid_evaluator(self) -> FIDEvaluator:
        """The proxy-FID evaluator with reference statistics materialized.

        Reference statistics are the expensive part (feature extraction over
        hundreds of images); with an artifact store enabled they are computed
        once per (workload, sample count, feature space) fleet-wide and
        loaded from disk everywhere else.
        """
        if self._fid_evaluator is None:
            evaluator = FIDEvaluator()
            store = self.artifact_store
            key = ArtifactStore.key_for(
                self.workload.name,
                repr(self.workload.image_shape),
                str(self.config.num_reference_samples),
                evaluator.extractor.fingerprint(),
            )
            stats = store.get(FID_STATS_ARTIFACT_KIND, key) if store is not None else None
            if isinstance(stats, FeatureStatistics):
                evaluator.set_reference_statistics(stats)
            else:
                computed = evaluator.set_reference(
                    self.workload.dataset.reference_samples(self.config.num_reference_samples)
                )
                if store is not None:
                    store.put(FID_STATS_ARTIFACT_KIND, key, computed)
            self._fid_evaluator = evaluator
        return self._fid_evaluator

    def relu_unet(self) -> EDMUNet:
        """The SiLU model adapted to ReLU (cached; Sec. III-B)."""
        if self._relu_unet is None:
            calibration = make_calibration_batch(
                self.workload.image_shape,
                batch_size=2,
                sigma_data=self.workload.dataset.sigma_data(),
                label_dim=self.workload.unet.config.label_dim,
                seed=self.config.seed,
            )
            self._relu_unet, _ = adapt_to_relu(self.workload.unet, calibration)
        return self._relu_unet

    def _model_for(self, relu: bool) -> EDMUNet:
        base = self.relu_unet() if relu else self.workload.unet
        return copy.deepcopy(base)

    def _denoiser_for(self, model: EDMUNet):
        from ..diffusion.edm import EDMDenoiser

        return EDMDenoiser(model, prior=self.workload.dataset.prior)

    # -- quality evaluation ------------------------------------------------------

    def evaluate_policy(
        self, policy: QuantizationPolicy | None, scheme_name: str | None = None
    ) -> QuantizationEvaluation:
        """Generate images under a quantization policy and score them with FID."""
        relu = bool(policy is not None and policy.requires_relu)
        model = self._model_for(relu)
        if policy is not None:
            policy.apply(model)
        denoiser = self._denoiser_for(model)
        result = sample(
            denoiser,
            self.config.num_fid_samples,
            self.workload.image_shape,
            self.config.sampler_config(),
        )
        fid = self.fid_evaluator.fid(result.images)
        costs = cost_summary(model, policy)
        return QuantizationEvaluation(
            workload=self.workload.name,
            scheme=scheme_name or (policy.name if policy is not None else "FP32"),
            fid=fid,
            costs=costs,
            relu_based=relu,
        )

    def evaluate_format(self, format_name: str) -> QuantizationEvaluation:
        """Evaluate one Table I uniform format ("FP32", "INT8", "INT4-VSQ", ...)."""
        model = self._model_for(relu=False)
        if format_name in ("FP32",):
            return self.evaluate_policy(None, scheme_name="FP32")
        policy = table1_policy(model, format_name)
        return self.evaluate_policy(policy, scheme_name=format_name)

    def evaluate_mixed_precision(self, relu: bool) -> QuantizationEvaluation:
        """Evaluate Ours (MP-only) or Ours (MP+ReLU) from Table II."""
        model = self._model_for(relu)
        policy = mixed_precision_policy(model, relu=relu)
        return self.evaluate_policy(policy, scheme_name=policy.name)

    # -- sparsity + hardware evaluation --------------------------------------------

    def _trace_key(self, relu: bool, policy: QuantizationPolicy | None) -> str:
        """Artifact key covering every knob that shapes a sparsity trace."""
        return ArtifactStore.key_for(
            self.workload.name,
            repr(self.workload.image_shape),
            str(self.config.num_trace_samples),
            str(self.config.num_sampling_steps),
            repr(self.config.zero_tolerance_rel),
            str(self.config.seed),
            str(relu),
            _policy_fingerprint(policy),
        )

    def collect_trace(
        self, relu: bool = True, policy: QuantizationPolicy | None = None
    ) -> TemporalSparsityTrace:
        """Collect the temporal per-channel sparsity trace for this workload.

        Tracing replays the whole sampling trajectory, which dominates
        hardware-evaluation wall-clock; with an artifact store enabled the
        trace is persisted under a key covering the workload, the sampling
        knobs and the policy's bit assignments, so other processes reuse it.
        ``policy=None`` is resolved to the default mixed-precision policy
        *before* keying, so explicit and defaulted callers share one artifact.
        """
        if policy is None:
            base = self.relu_unet() if relu else self.workload.unet
            policy = mixed_precision_policy(base, relu=relu)
        store = self.artifact_store
        key = self._trace_key(relu, policy)
        if store is not None:
            cached = store.get(TRACE_ARTIFACT_KIND, key)
            if isinstance(cached, TemporalSparsityTrace):
                return cached
        model = self._model_for(relu)
        policy.apply(model)
        denoiser = self._denoiser_for(model)
        trace = collect_sparsity_trace(
            denoiser,
            self.workload.image_shape,
            self.config.sampler_config(),
            num_samples=self.config.num_trace_samples,
            zero_tolerance_rel=self.config.zero_tolerance_rel,
        )
        if store is not None:
            store.put(TRACE_ARTIFACT_KIND, key, trace)
        return trace

    def evaluate_hardware(
        self,
        trace: TemporalSparsityTrace | None = None,
        sqdm: AcceleratorConfig | None = None,
        baseline: AcceleratorConfig | None = None,
        executor: "Executor | None" = None,
    ) -> HardwareEvaluation:
        """Run the Fig. 12 comparison for this workload.

        The quantized trace (4-bit Conv blocks, 8-bit elsewhere, per the
        MP+ReLU policy) is executed on the SQ-DM accelerator and on the
        dense 2-DPE baseline; the same layer geometry at FP16 on the dense
        baseline provides the total-speed-up reference.

        The three simulations are submitted as typed specs through the
        unified execution API.  The default
        :class:`~repro.core.execution.InlineExecutor` batches them through
        one coalesced pass against the two-tier report cache: sweeps that
        vary only one configuration re-use the shared FP16 / dense-baseline
        runs (from memory or the artifact store), and the cache misses that
        do simulate share cross-trace batched passes.  Pass any other
        :class:`~repro.core.execution.Executor` (a ``ServiceExecutor``, a
        ``RemoteExecutor``, ...) to route the same three jobs through a
        shared service or a remote server instead; the caller keeps
        ownership of a passed-in executor.
        """
        from ..serve.specs import SimulateJobSpec
        from .execution import InlineExecutor

        model = self._model_for(relu=True)
        policy = mixed_precision_policy(model, relu=True)
        if trace is None:
            trace = self.collect_trace(relu=True, policy=policy)

        quant_trace = trace_to_workloads(trace, policy)
        fp16_trace = trace_to_workloads(trace, policy=None, default_bits=16)

        sqdm = sqdm or sqdm_config()
        baseline = baseline or dense_baseline_config()
        if executor is None:
            executor = InlineExecutor(cache=self.report_cache)
        handles = executor.map(
            [
                SimulateJobSpec(config=sqdm, trace=quant_trace),
                SimulateJobSpec(config=baseline, trace=quant_trace),
                SimulateJobSpec(config=baseline, trace=fp16_trace),
            ],
            labels=[
                f"fig12:{self.workload.name}:sqdm",
                f"fig12:{self.workload.name}:dense",
                f"fig12:{self.workload.name}:fp16",
            ],
        )
        sqdm_report, dense_report, fp16_report = [handle.result() for handle in handles]
        return HardwareEvaluation(
            workload=self.workload.name,
            sqdm_report=sqdm_report,
            dense_baseline_report=dense_report,
            fp16_dense_report=fp16_report,
            average_sparsity=trace.average_sparsity(),
        )
