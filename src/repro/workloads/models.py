"""Model zoo: the four EDM workloads evaluated in the paper.

The paper evaluates EDM1 trained on CIFAR-10, AFHQv2 and FFHQ, and EDM2
trained on ImageNet.  This module builds U-Nets with per-dataset
configurations and — because no pretrained checkpoints are available —
*calibrates their synthetic weights* so the statistical properties that
drive every result in the paper are present:

* **Activation outliers.**  Trained diffusion U-Nets exhibit heavy-tailed
  activations (the reason SVDquant needs smoothing/low-rank branches and the
  reason coarse-grained INT8/INT4 degrade badly in Table I).  We reproduce
  this by giving a small fraction of GroupNorm gains and conv filters
  outlier magnitudes drawn from a log-normal tail.
* **Boundary-block sensitivity.**  The paper's Fig. 3 finds the first and
  last few blocks most quantization-sensitive; these blocks operate closest
  to pixel space and carry the largest dynamic range.  Outlier strength is
  therefore scheduled to be strongest at the first/last blocks and mildest
  in the middle of the U-Net.
* **Sparsity-relevant channel offsets.**  ReLU-induced per-channel sparsity
  (Sec. III-C, ~65% average) requires channels whose pre-activation mean is
  biased negative to varying degrees, and a time-step-dependent shift via
  the noise-level embedding so that sparse channels become dense over the
  sampling trajectory and vice versa (Fig. 7).  GroupNorm shifts and the
  per-block embedding projections are calibrated accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..diffusion.datasets import SyntheticImageDataset, load_dataset
from ..diffusion.edm import EDMDenoiser
from ..nn.unet import EDMUNet, UNetConfig


@dataclass(frozen=True)
class WorkloadSpec:
    """U-Net configuration and calibration knobs for one paper workload."""

    dataset: str
    model_name: str
    model_channels: int
    channel_mult: tuple[int, ...]
    num_blocks_per_res: int
    attn_resolutions: tuple[int, ...]
    outlier_fraction: float = 0.04
    outlier_magnitude: float = 8.0
    boundary_sensitivity: float = 3.0
    sparsity_bias_mean: float = -0.35
    sparsity_bias_std: float = 0.65
    temporal_shift_scale: float = 0.5
    seed: int = 0


#: The four paper workloads.  Channel counts are scaled down from the real
#: EDM1/EDM2 models so that full sampling sweeps run on a CPU, but the
#: relative model sizes (ImageNet > FFHQ/AFHQ > CIFAR) are preserved.
WORKLOAD_SPECS: dict[str, WorkloadSpec] = {
    "cifar10": WorkloadSpec(
        dataset="cifar10",
        model_name="EDM1",
        model_channels=16,
        channel_mult=(1, 2),
        num_blocks_per_res=2,
        attn_resolutions=(8,),
        seed=11,
    ),
    "afhqv2": WorkloadSpec(
        dataset="afhqv2",
        model_name="EDM1",
        model_channels=16,
        channel_mult=(1, 2, 2),
        num_blocks_per_res=1,
        attn_resolutions=(8,),
        seed=12,
    ),
    "ffhq": WorkloadSpec(
        dataset="ffhq",
        model_name="EDM1",
        model_channels=16,
        channel_mult=(1, 2, 2),
        num_blocks_per_res=1,
        attn_resolutions=(8,),
        outlier_magnitude=10.0,
        seed=13,
    ),
    "imagenet": WorkloadSpec(
        dataset="imagenet",
        model_name="EDM2",
        model_channels=24,
        channel_mult=(1, 2, 2),
        num_blocks_per_res=1,
        attn_resolutions=(8, 4),
        outlier_magnitude=6.0,
        seed=14,
    ),
}


@dataclass
class Workload:
    """A ready-to-run workload: dataset, calibrated U-Net and hybrid denoiser."""

    spec: WorkloadSpec
    dataset: SyntheticImageDataset
    unet: EDMUNet
    denoiser: EDMDenoiser = field(init=False)

    def __post_init__(self) -> None:
        self.denoiser = EDMDenoiser(self.unet, prior=self.dataset.prior)

    @property
    def name(self) -> str:
        return self.spec.dataset

    @property
    def label(self) -> str:
        return self.dataset.label

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return self.dataset.image_shape

    def rebuild_denoiser(self) -> EDMDenoiser:
        """Re-wrap the (possibly replaced) U-Net in a fresh hybrid denoiser."""
        self.denoiser = EDMDenoiser(self.unet, prior=self.dataset.prior)
        return self.denoiser


def _block_boundary_weight(order: int, total: int, strength: float) -> float:
    """Outlier-strength multiplier per block: large at both ends, ~1 in the middle.

    Uses a symmetric quadratic bowl over the execution order so the first and
    last blocks receive ``strength`` times the baseline outlier magnitude,
    reproducing the sensitivity profile of Fig. 3.
    """
    if total <= 1:
        return strength
    position = order / (total - 1)
    bowl = 4.0 * (position - 0.5) ** 2  # 1 at the ends, 0 in the middle
    return 1.0 + (strength - 1.0) * bowl


def _inject_weight_outliers(
    weight: np.ndarray, fraction: float, magnitude: float, rng: np.random.Generator
) -> np.ndarray:
    """Scale a random subset of output filters by log-normal outlier factors."""
    out_channels = weight.shape[0]
    num_outliers = max(1, int(round(fraction * out_channels)))
    idx = rng.choice(out_channels, size=num_outliers, replace=False)
    factors = magnitude * rng.lognormal(mean=0.0, sigma=0.35, size=num_outliers)
    weight = weight.copy()
    weight[idx] *= factors.reshape(-1, *([1] * (weight.ndim - 1)))
    return weight


def _calibrate_block(
    block, boundary_weight: float, spec: WorkloadSpec, rng: np.random.Generator
) -> None:
    """Apply outlier, sparsity-offset and temporal-shift calibration to one block."""
    for conv in block.conv_layers():
        conv.weight = _inject_weight_outliers(
            conv.weight, spec.outlier_fraction, spec.outlier_magnitude * boundary_weight, rng
        )
    # GroupNorm gains: mostly ~1 with a heavy-tailed subset of outlier channels.
    for norm in (block.norm0, block.norm1):
        gains = rng.lognormal(mean=0.0, sigma=0.25, size=norm.num_channels)
        outliers = rng.random(norm.num_channels) < spec.outlier_fraction
        gains[outliers] *= spec.outlier_magnitude * boundary_weight * 0.5
        norm.gamma = gains
        # Channel shifts: negative-mean spread controls ReLU per-channel sparsity.
        norm.beta = rng.normal(spec.sparsity_bias_mean, spec.sparsity_bias_std, norm.num_channels)
    # Embedding projection: gives each channel a noise-level-dependent shift so
    # per-channel sparsity evolves across time steps (temporal sparsity, Fig. 7).
    emb = block.emb_linear
    emb.weight = rng.normal(
        0.0, spec.temporal_shift_scale / np.sqrt(emb.in_features), emb.weight.shape
    )
    emb.bias = rng.normal(0.0, 0.1, emb.out_features)


def build_unet(spec: WorkloadSpec, resolution: int, activation: str = "silu") -> EDMUNet:
    """Construct and calibrate the U-Net for a workload at the given resolution."""
    config = UNetConfig(
        img_resolution=resolution,
        model_channels=spec.model_channels,
        channel_mult=spec.channel_mult,
        num_blocks_per_res=spec.num_blocks_per_res,
        attn_resolutions=spec.attn_resolutions,
        activation=activation,
        seed=spec.seed,
    )
    unet = EDMUNet(config)
    rng = np.random.default_rng(spec.seed + 1000)
    infos = unet.block_infos()
    total = len(infos)
    for info in infos:
        boundary = _block_boundary_weight(info.order, total, spec.boundary_sensitivity)
        _calibrate_block(info.block, boundary, spec, rng)
    # Stem convolutions sit directly in pixel space: give them the strongest
    # outliers, mirroring the high sensitivity of the first/last layers.
    unet.conv_in.weight = _inject_weight_outliers(
        unet.conv_in.weight,
        spec.outlier_fraction,
        spec.outlier_magnitude * spec.boundary_sensitivity,
        rng,
    )
    unet.conv_out.weight = _inject_weight_outliers(
        unet.conv_out.weight,
        spec.outlier_fraction,
        spec.outlier_magnitude * spec.boundary_sensitivity,
        rng,
    )
    return unet


def load_workload(
    name: str,
    paper_resolution: bool = False,
    resolution: int | None = None,
    activation: str = "silu",
) -> Workload:
    """Build one of the four paper workloads (dataset + calibrated U-Net + denoiser)."""
    try:
        spec = WORKLOAD_SPECS[name]
    except KeyError as exc:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOAD_SPECS)}") from exc
    dataset = load_dataset(spec.dataset, paper_resolution=paper_resolution, resolution=resolution)
    unet = build_unet(spec, dataset.resolution, activation=activation)
    return Workload(spec=spec, dataset=dataset, unet=unet)


def workload_names() -> list[str]:
    """Workload names in the paper's table column order."""
    return ["cifar10", "afhqv2", "ffhq", "imagenet"]
