"""Workload zoo for the four paper evaluation targets."""

from .models import (
    WORKLOAD_SPECS,
    Workload,
    WorkloadSpec,
    build_unet,
    load_workload,
    workload_names,
)

__all__ = [
    "WORKLOAD_SPECS",
    "Workload",
    "WorkloadSpec",
    "build_unet",
    "load_workload",
    "workload_names",
]
