"""Synthetic stand-ins for the paper's four image datasets.

The paper evaluates EDM1 on CIFAR-10 (32x32), AFHQv2 (64x64) and FFHQ
(64x64), and EDM2 on ImageNet.  None of those datasets (nor the pretrained
checkpoints) can be shipped here, so each dataset is replaced by a synthetic
Gaussian-mixture image distribution whose parameters loosely mirror the
original's structure: number of modes (classes), spatial resolution and
texture smoothness.  The corresponding analytic prior doubles as the
"perfectly trained" denoiser (see :mod:`repro.diffusion.prior`).

Resolutions default to scaled-down values so that the full evaluation runs on
a CPU in seconds; the full paper resolutions are available via
``paper_resolution=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .prior import GaussianMixturePrior, make_smooth_templates


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one synthetic dataset."""

    name: str
    resolution: int
    paper_resolution: int
    channels: int
    num_classes: int
    smoothness: float
    template_amplitude: float
    component_std: float
    conditional: bool
    seed: int


#: The four workloads evaluated in Tables I/II and Figs. 1/12 of the paper.
DATASET_SPECS: dict[str, DatasetSpec] = {
    "cifar10": DatasetSpec(
        name="cifar10",
        resolution=16,
        paper_resolution=32,
        channels=3,
        num_classes=10,
        smoothness=4.0,
        template_amplitude=0.45,
        component_std=0.25,
        conditional=False,
        seed=101,
    ),
    "afhqv2": DatasetSpec(
        name="afhqv2",
        resolution=16,
        paper_resolution=64,
        channels=3,
        num_classes=3,
        smoothness=6.0,
        template_amplitude=0.5,
        component_std=0.22,
        conditional=False,
        seed=102,
    ),
    "ffhq": DatasetSpec(
        name="ffhq",
        resolution=16,
        paper_resolution=64,
        channels=3,
        num_classes=6,
        smoothness=5.0,
        template_amplitude=0.5,
        component_std=0.2,
        conditional=False,
        seed=103,
    ),
    "imagenet": DatasetSpec(
        name="imagenet",
        resolution=16,
        paper_resolution=64,
        channels=3,
        num_classes=16,
        smoothness=3.5,
        template_amplitude=0.5,
        component_std=0.28,
        conditional=True,
        seed=104,
    ),
}

#: Human-readable workload labels as they appear in the paper's tables.
DATASET_LABELS: dict[str, str] = {
    "cifar10": "EDM1, CIFAR-10",
    "afhqv2": "EDM1, AFHQv2",
    "ffhq": "EDM1, FFHQ",
    "imagenet": "EDM2, ImageNet",
}


class SyntheticImageDataset:
    """A synthetic image distribution with an analytic prior.

    Provides reference samples (for FID statistics) and the matching
    :class:`~repro.diffusion.prior.GaussianMixturePrior` used by the hybrid
    denoiser.
    """

    def __init__(
        self, spec: DatasetSpec, paper_resolution: bool = False, resolution: int | None = None
    ):
        self.spec = spec
        if resolution is not None:
            self.resolution = int(resolution)
        else:
            self.resolution = spec.paper_resolution if paper_resolution else spec.resolution
        self.image_shape = (spec.channels, self.resolution, self.resolution)
        rng = np.random.default_rng(spec.seed)
        means = make_smooth_templates(
            spec.num_classes,
            self.image_shape,
            smoothness=spec.smoothness,
            amplitude=spec.template_amplitude,
            rng=rng,
        )
        self.prior = GaussianMixturePrior(
            means=means,
            component_std=spec.component_std,
            image_shape=self.image_shape,
        )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def label(self) -> str:
        return DATASET_LABELS[self.spec.name]

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    def sigma_data(self) -> float:
        """EDM's data standard deviation for this dataset."""
        return self.prior.data_std()

    def reference_samples(self, num_samples: int, seed: int = 0) -> np.ndarray:
        """Draw reference images from the data distribution (for FID stats)."""
        rng = np.random.default_rng(seed)
        return self.prior.sample(num_samples, rng)

    def reference_labels(self, num_samples: int, seed: int = 0) -> np.ndarray:
        """One-hot class labels matched to ``reference_samples`` draws."""
        rng = np.random.default_rng(seed)
        return self.prior.sample_labels(num_samples, rng)


def load_dataset(
    name: str, paper_resolution: bool = False, resolution: int | None = None
) -> SyntheticImageDataset:
    """Instantiate one of the four synthetic workload datasets by name."""
    try:
        spec = DATASET_SPECS[name]
    except KeyError as exc:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}") from exc
    return SyntheticImageDataset(spec, paper_resolution=paper_resolution, resolution=resolution)


def dataset_names() -> list[str]:
    """The four workload names in the paper's table order."""
    return ["cifar10", "afhqv2", "ffhq", "imagenet"]
