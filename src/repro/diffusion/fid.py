"""Proxy Fréchet Inception Distance.

The paper measures generation quality with FID computed from InceptionV3
features of 10k-50k generated images.  Neither the Inception network nor its
weights are available offline, so this module computes the same Fréchet
distance on features from a fixed, randomly initialized convolutional feature
extractor (a standard proxy: random-feature FID preserves the *ordering* of
models whose outputs differ by injected noise/error, which is what the
reproduction needs — see DESIGN.md).

The Fréchet distance between two Gaussians N(mu1, C1) and N(mu2, C2) is

    ||mu1 - mu2||^2 + Tr(C1 + C2 - 2 (C1 C2)^(1/2)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg

from ..nn import functional as F


@dataclass
class FeatureStatistics:
    """Gaussian statistics (mean, covariance) of a feature population."""

    mean: np.ndarray
    cov: np.ndarray
    num_samples: int


class RandomFeatureExtractor:
    """Fixed random two-stage convolutional feature extractor.

    Images are passed through two strided random convolutions with ReLU,
    then global average and standard-deviation pooled into a feature vector.
    The weights are seeded, so every FID computation in the repository uses
    the identical feature space.
    """

    def __init__(self, channels: int = 3, feature_dim: int = 48, seed: int = 7):
        rng = np.random.default_rng(seed)
        mid = max(feature_dim // 2, 8)
        self.conv1_weight = rng.normal(0.0, 1.0 / np.sqrt(channels * 9), (mid, channels, 3, 3))
        self.conv2_weight = rng.normal(0.0, 1.0 / np.sqrt(mid * 9), (feature_dim // 2, mid, 3, 3))
        self.feature_dim = (feature_dim // 2) * 2

    def fingerprint(self) -> str:
        """Digest of the feature space (the actual weights), for artifact keys.

        Reference statistics are only comparable within one feature space, so
        persisted statistics are keyed by this digest rather than by the
        constructor arguments that happened to produce it.
        """
        import hashlib

        digest = hashlib.sha256()
        for weight in (self.conv1_weight, self.conv2_weight):
            digest.update(np.ascontiguousarray(weight, dtype=np.float64).tobytes())
        return digest.hexdigest()

    def extract(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Map NCHW images to feature vectors of shape (N, feature_dim)."""
        images = np.asarray(images, dtype=np.float64)
        features = []
        for start in range(0, images.shape[0], batch_size):
            batch = images[start : start + batch_size]
            h = F.relu(F.conv2d(batch, self.conv1_weight, stride=2, padding=1))
            h = F.relu(F.conv2d(h, self.conv2_weight, stride=2, padding=1))
            mean_pool = h.mean(axis=(2, 3))
            std_pool = h.std(axis=(2, 3))
            features.append(np.concatenate([mean_pool, std_pool], axis=1))
        return np.concatenate(features, axis=0)


def compute_statistics(features: np.ndarray) -> FeatureStatistics:
    """Mean and covariance of a feature population."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D array (samples, dims)")
    if features.shape[0] < 2:
        raise ValueError("need at least two samples to compute covariance")
    mean = features.mean(axis=0)
    cov = np.cov(features, rowvar=False)
    return FeatureStatistics(mean=mean, cov=np.atleast_2d(cov), num_samples=features.shape[0])


def frechet_distance(
    stats1: FeatureStatistics, stats2: FeatureStatistics, eps: float = 1e-6
) -> float:
    """Fréchet distance between two feature Gaussians."""
    mu1, mu2 = stats1.mean, stats2.mean
    cov1, cov2 = stats1.cov, stats2.cov
    diff = mu1 - mu2

    covmean = linalg.sqrtm(cov1 @ cov2)
    if not np.isfinite(covmean).all():
        offset = np.eye(cov1.shape[0]) * eps
        covmean = linalg.sqrtm((cov1 + offset) @ (cov2 + offset))
    covmean = np.real(covmean)

    fid = float(diff @ diff + np.trace(cov1) + np.trace(cov2) - 2.0 * np.trace(covmean))
    return max(fid, 0.0)


class FIDEvaluator:
    """Convenience wrapper that caches reference statistics per dataset."""

    def __init__(
        self, feature_extractor: RandomFeatureExtractor | None = None, scale: float = 100.0
    ):
        self.extractor = feature_extractor or RandomFeatureExtractor()
        self.scale = float(scale)
        self._reference: FeatureStatistics | None = None

    def set_reference(self, reference_images: np.ndarray) -> FeatureStatistics:
        """Compute and cache reference-set feature statistics."""
        self._reference = compute_statistics(self.extractor.extract(reference_images))
        return self._reference

    def set_reference_statistics(self, stats: FeatureStatistics) -> FeatureStatistics:
        """Adopt precomputed reference statistics (e.g. loaded from an artifact store)."""
        if not isinstance(stats, FeatureStatistics):
            raise TypeError(f"expected FeatureStatistics, got {type(stats).__name__}")
        self._reference = stats
        return self._reference

    @property
    def reference_statistics(self) -> FeatureStatistics | None:
        """The cached reference statistics, if :meth:`set_reference` has run."""
        return self._reference

    def fid(self, generated_images: np.ndarray) -> float:
        """Proxy FID of generated images against the cached reference set.

        The raw Fréchet distance of the small random feature space is scaled
        by a fixed constant so values land in a range comparable to paper
        FID scores; only relative comparisons are meaningful.
        """
        if self._reference is None:
            raise RuntimeError("call set_reference() before fid()")
        stats = compute_statistics(self.extractor.extract(generated_images))
        return self.scale * frechet_distance(self._reference, stats)
