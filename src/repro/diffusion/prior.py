"""Analytic Gaussian-mixture data prior.

The reproduction cannot ship the authors' pretrained EDM checkpoints, so the
"perfectly trained denoiser" is replaced by the analytically optimal denoiser
of a known synthetic data distribution: an isotropic Gaussian mixture in
image space.  For data

    x0 ~ sum_k w_k * N(mu_k, s^2 I)

the noisy marginal at noise level sigma is another Gaussian mixture with
variance ``s^2 + sigma^2``, and the MMSE denoiser (posterior mean E[x0 | x])
has a closed form.  This is exactly the quantity a perfectly trained EDM
network approximates, so driving the sampler with it reproduces the
generation dynamics, while the quantized U-Net's *error* is layered on top
(see :mod:`repro.diffusion.edm`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from scipy.special import logsumexp


@dataclass
class GaussianMixturePrior:
    """Isotropic Gaussian mixture over flattened images.

    Attributes
    ----------
    means:
        Component means, shape ``(K, D)`` where ``D = C*H*W``.
    component_std:
        Shared isotropic standard deviation ``s`` of each component.
    weights:
        Mixture weights, shape ``(K,)``; default uniform.
    image_shape:
        The (C, H, W) shape images are reshaped to/from.
    """

    means: np.ndarray
    component_std: float
    image_shape: tuple[int, int, int]
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.means = np.asarray(self.means, dtype=np.float64)
        if self.means.ndim != 2:
            raise ValueError("means must have shape (K, D)")
        expected_dim = int(np.prod(self.image_shape))
        if self.means.shape[1] != expected_dim:
            raise ValueError(
                f"mean dimension {self.means.shape[1]} does not match image shape "
                f"{self.image_shape} (expected {expected_dim})"
            )
        if self.component_std <= 0:
            raise ValueError("component_std must be positive")
        if self.weights is None:
            self.weights = np.full(self.means.shape[0], 1.0 / self.means.shape[0])
        else:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            self.weights = self.weights / np.sum(self.weights)

    @property
    def num_components(self) -> int:
        return int(self.means.shape[0])

    @property
    def dim(self) -> int:
        return int(self.means.shape[1])

    def data_std(self) -> float:
        """Overall standard deviation of the data distribution (EDM's sigma_data)."""
        mean_of_means = np.average(self.means, axis=0, weights=self.weights)
        between = np.average(
            np.sum((self.means - mean_of_means) ** 2, axis=1), weights=self.weights
        ) / self.dim
        return float(np.sqrt(self.component_std**2 + between))

    # -- sampling ------------------------------------------------------------

    def sample(self, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw data samples, returned as NCHW images."""
        components = rng.choice(self.num_components, size=num_samples, p=self.weights)
        noise = rng.normal(0.0, self.component_std, size=(num_samples, self.dim))
        flat = self.means[components] + noise
        return flat.reshape(num_samples, *self.image_shape)

    def sample_labels(self, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """One-hot component labels for conditional-generation scenarios."""
        components = rng.choice(self.num_components, size=num_samples, p=self.weights)
        onehot = np.zeros((num_samples, self.num_components))
        onehot[np.arange(num_samples), components] = 1.0
        return onehot

    # -- analytic denoiser ----------------------------------------------------

    def posterior_mean(self, x: np.ndarray, sigma: float) -> np.ndarray:
        """MMSE denoiser E[x0 | x] for noisy images x = x0 + sigma * n.

        Parameters
        ----------
        x:
            Noisy images in NCHW layout.
        sigma:
            Scalar noise level.
        """
        x = np.asarray(x, dtype=np.float64)
        batch = x.shape[0]
        flat = x.reshape(batch, -1)
        total_var = self.component_std**2 + float(sigma) ** 2

        # Posterior responsibilities gamma_k(x) in log space for stability.
        diffs = flat[:, None, :] - self.means[None, :, :]  # (B, K, D)
        sq_dist = np.sum(diffs**2, axis=2)
        log_resp = np.log(self.weights)[None, :] - sq_dist / (2.0 * total_var)
        log_resp = log_resp - logsumexp(log_resp, axis=1, keepdims=True)
        resp = np.exp(log_resp)

        # Per-component posterior mean of x0 given x (conjugate Gaussian).
        shrink = self.component_std**2 / total_var
        component_means = shrink * flat[:, None, :] + (1.0 - shrink) * self.means[None, :, :]
        posterior = np.einsum("bk,bkd->bd", resp, component_means, optimize=True)
        return posterior.reshape(x.shape)

    def score(self, x: np.ndarray, sigma: float) -> np.ndarray:
        """Score function grad_x log p_sigma(x), derived from the posterior mean."""
        posterior = self.posterior_mean(x, sigma)
        return (posterior - np.asarray(x, dtype=np.float64)) / (float(sigma) ** 2)


def make_smooth_templates(
    num_components: int,
    image_shape: tuple[int, int, int],
    smoothness: float,
    amplitude: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate smooth random image templates to serve as mixture means.

    Templates are low-pass-filtered Gaussian random fields: white noise whose
    Fourier spectrum is attenuated as ``exp(-(f / f_c)^2)`` with cut-off
    controlled by ``smoothness`` (larger = smoother, more natural-image-like
    spectra).  Each template is normalized to the requested amplitude.
    """
    channels, height, width = image_shape
    fy = np.fft.fftfreq(height)[:, None]
    fx = np.fft.fftfreq(width)[None, :]
    radius = np.sqrt(fy**2 + fx**2)
    cutoff = 1.0 / max(smoothness, 1e-6)
    transfer = np.exp(-((radius / cutoff) ** 2))

    templates = np.empty((num_components, channels, height, width))
    for k in range(num_components):
        for c in range(channels):
            noise = rng.normal(size=(height, width))
            filtered = np.real(np.fft.ifft2(np.fft.fft2(noise) * transfer))
            std = np.std(filtered)
            if std > 0:
                filtered = filtered / std
            templates[k, c] = filtered * amplitude
    return templates.reshape(num_components, -1)
