"""Noise-level schedules for EDM sampling.

EDM (Karras et al. 2022) samples with a decreasing sequence of noise levels

    sigma_i = (sigma_max^(1/rho) + i/(N-1) * (sigma_min^(1/rho) - sigma_max^(1/rho)))^rho

with ``rho = 7`` by default, followed by a terminal ``sigma = 0``.  Each
noise level corresponds to one "time step", i.e. one full evaluation of the
U-Net denoiser — the repeated evaluations whose cost SQ-DM attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScheduleConfig:
    """Parameters of the Karras sigma schedule."""

    num_steps: int = 18
    sigma_min: float = 0.002
    sigma_max: float = 80.0
    rho: float = 7.0

    def __post_init__(self) -> None:
        if self.num_steps < 1:
            raise ValueError("num_steps must be at least 1")
        if not 0 < self.sigma_min < self.sigma_max:
            raise ValueError("need 0 < sigma_min < sigma_max")
        if self.rho <= 0:
            raise ValueError("rho must be positive")


def karras_sigmas(config: ScheduleConfig | None = None) -> np.ndarray:
    """Return the length-``num_steps + 1`` sigma sequence (last entry is 0)."""
    config = config or ScheduleConfig()
    steps = np.arange(config.num_steps, dtype=np.float64)
    if config.num_steps == 1:
        ramp = np.zeros(1)
    else:
        ramp = steps / (config.num_steps - 1)
    inv_rho_min = config.sigma_min ** (1.0 / config.rho)
    inv_rho_max = config.sigma_max ** (1.0 / config.rho)
    sigmas = (inv_rho_max + ramp * (inv_rho_min - inv_rho_max)) ** config.rho
    return np.concatenate([sigmas, [0.0]])


def linear_sigmas(num_steps: int, sigma_min: float = 0.002, sigma_max: float = 80.0) -> np.ndarray:
    """A simple linearly spaced schedule, used as a baseline in ablations."""
    if num_steps < 1:
        raise ValueError("num_steps must be at least 1")
    sigmas = np.linspace(sigma_max, sigma_min, num_steps)
    return np.concatenate([sigmas, [0.0]])


def num_model_evaluations(config: ScheduleConfig, second_order: bool = True) -> int:
    """Number of U-Net evaluations a full sampling run performs.

    Heun's method (the EDM default) performs two evaluations per step except
    for the final step to sigma = 0, which needs only one.
    """
    if second_order:
        return 2 * config.num_steps - 1
    return config.num_steps
