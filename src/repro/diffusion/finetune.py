"""SiLU → ReLU model adaptation.

The paper replaces every Conv+SiLU block with Conv+ReLU and finetunes the
full-precision model (at <10% of the pretraining cost) so that the ReLU-based
model reaches the same image quality while (a) making activations
non-negative — so UINT4 uses all 16 quantization levels (Fig. 6) — and
(b) inducing ~65% average activation sparsity (Sec. III-C).

Without a training pipeline, the reproduction performs a calibration-based
adaptation instead: activations are swapped to ReLU and each convolution's
weights and biases are rescaled per output channel so that its output
statistics (per-channel mean and standard deviation over a calibration batch)
match the original SiLU model's.  This keeps the downstream activation
distributions — and therefore the quantization and sparsity behaviour the
rest of the study depends on — aligned with the SiLU baseline.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..nn.layers import Conv2d
from ..nn.unet import EDMUNet


@dataclass
class CalibrationBatch:
    """Inputs used to drive calibration forward passes."""

    images: np.ndarray
    noise_cond: np.ndarray
    labels: np.ndarray | None = None


@dataclass
class AdaptationReport:
    """Summary of the SiLU→ReLU adaptation."""

    adjusted_convs: int
    mean_output_shift: float
    mean_scale: float


def _per_channel_stats(activation: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-output-channel mean and std of an NCHW activation."""
    flat = np.moveaxis(activation, 1, 0).reshape(activation.shape[1], -1)
    return flat.mean(axis=1), flat.std(axis=1)


def _collect_conv_stats(
    model: EDMUNet, batch: CalibrationBatch
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Run the model and collect per-channel output stats for every block conv."""
    model.set_recording(True)
    try:
        model(batch.images, batch.noise_cond, batch.labels)
        stats: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for info in model.block_infos():
            for conv in info.block.conv_layers():
                if conv.last_output is not None:
                    stats[id(conv)] = _per_channel_stats(conv.last_output)
    finally:
        model.set_recording(False)
    return stats


def _match_conv_to_reference(
    conv: Conv2d, current: tuple[np.ndarray, np.ndarray], reference: tuple[np.ndarray, np.ndarray]
) -> tuple[float, float]:
    """Rescale a convolution so its output stats match the reference stats.

    Output ``y`` of a conv with weight ``w`` and bias ``b`` transforms as
    ``y' = a * (y - m_cur) + m_ref`` when ``w' = a*w`` and
    ``b' = a*(b - m_cur) + m_ref`` (per output channel), which maps the
    current per-channel mean/std onto the reference's.
    """
    cur_mean, cur_std = current
    ref_mean, ref_std = reference
    scale = ref_std / np.maximum(cur_std, 1e-6)
    scale = np.clip(scale, 0.25, 4.0)  # keep the adaptation a gentle correction
    conv.weight = conv.weight * scale[:, None, None, None]
    if conv.bias is not None:
        conv.bias = scale * (conv.bias - cur_mean) + ref_mean
    return float(np.mean(np.abs(ref_mean - cur_mean))), float(np.mean(scale))


def adapt_to_relu(
    model: EDMUNet, calibration: CalibrationBatch, num_passes: int = 2
) -> tuple[EDMUNet, AdaptationReport]:
    """Produce a ReLU-based copy of ``model`` calibrated to match its behaviour.

    Parameters
    ----------
    model:
        The original SiLU-based U-Net (left unmodified).
    calibration:
        A small batch of representative noisy inputs and noise conditioning.
    num_passes:
        Number of calibration refinement passes; each pass re-measures the
        ReLU model's statistics after the previous corrections.

    Returns
    -------
    The adapted ReLU model and a report of the adjustment magnitudes.
    """
    reference_stats = _collect_conv_stats(model, calibration)

    relu_model = copy.deepcopy(model)
    relu_model.set_activation("relu")

    adjusted = 0
    shifts: list[float] = []
    scales: list[float] = []
    for _ in range(max(num_passes, 1)):
        current_stats = _collect_conv_stats(relu_model, calibration)
        ref_by_index = _stats_by_position(model, reference_stats)
        cur_by_index = _stats_by_position(relu_model, current_stats)
        adjusted = 0
        shifts.clear()
        scales.clear()
        for key, conv in _convs_by_position(relu_model).items():
            if key not in ref_by_index or key not in cur_by_index:
                continue
            shift, scale = _match_conv_to_reference(conv, cur_by_index[key], ref_by_index[key])
            shifts.append(shift)
            scales.append(scale)
            adjusted += 1

    report = AdaptationReport(
        adjusted_convs=adjusted,
        mean_output_shift=float(np.mean(shifts)) if shifts else 0.0,
        mean_scale=float(np.mean(scales)) if scales else 1.0,
    )
    return relu_model, report


def _convs_by_position(model: EDMUNet) -> dict[tuple[str, int], Conv2d]:
    """Index block convolutions by (block name, conv index) for cross-model matching."""
    mapping: dict[tuple[str, int], Conv2d] = {}
    for info in model.block_infos():
        for idx, conv in enumerate(info.block.conv_layers()):
            mapping[(info.name, idx)] = conv
    return mapping


def _stats_by_position(
    model: EDMUNet, stats_by_id: dict[int, tuple[np.ndarray, np.ndarray]]
) -> dict[tuple[str, int], tuple[np.ndarray, np.ndarray]]:
    """Re-key conv stats from object identity to (block name, conv index)."""
    out: dict[tuple[str, int], tuple[np.ndarray, np.ndarray]] = {}
    for key, conv in _convs_by_position(model).items():
        if id(conv) in stats_by_id:
            out[key] = stats_by_id[id(conv)]
    return out


def make_calibration_batch(
    image_shape: tuple[int, int, int],
    batch_size: int = 4,
    sigma: float = 1.0,
    sigma_data: float = 0.5,
    label_dim: int = 0,
    seed: int = 0,
) -> CalibrationBatch:
    """Build a calibration batch of noisy inputs at a representative noise level."""
    rng = np.random.default_rng(seed)
    c_in = 1.0 / np.sqrt(sigma**2 + sigma_data**2)
    c_noise = np.log(max(sigma, 1e-12)) / 4.0
    images = rng.normal(size=(batch_size, *image_shape)) * sigma * c_in
    noise_cond = np.full(batch_size, c_noise)
    labels = None
    if label_dim > 0:
        labels = np.zeros((batch_size, label_dim))
        labels[np.arange(batch_size), rng.integers(0, label_dim, batch_size)] = 1.0
    return CalibrationBatch(images=images, noise_cond=noise_cond, labels=labels)
