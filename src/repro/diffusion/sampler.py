"""EDM samplers: deterministic 2nd-order Heun (the EDM default) and Euler.

Sampling starts from ``x ~ N(0, sigma_max^2 I)`` and integrates the probability
flow ODE ``dx/dsigma = (x - D(x; sigma)) / sigma`` down the Karras sigma
schedule.  Each step evaluates the denoiser once (Euler) or twice (Heun),
which is what makes diffusion inference expensive and is the quantity SQ-DM's
accelerator speeds up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .edm import EDMDenoiser
from .schedule import ScheduleConfig, karras_sigmas


@dataclass
class SamplerConfig:
    """Configuration of the ODE sampler."""

    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)
    second_order: bool = True
    seed: int = 0


@dataclass
class SamplingResult:
    """Output of a sampling run."""

    images: np.ndarray
    num_steps: int
    network_evaluations: int
    sigmas: np.ndarray


StepCallback = Callable[[int, float, np.ndarray], None]


def sample(
    denoiser: EDMDenoiser,
    num_samples: int,
    image_shape: tuple[int, int, int],
    config: SamplerConfig | None = None,
    labels: np.ndarray | None = None,
    step_callback: StepCallback | None = None,
) -> SamplingResult:
    """Generate ``num_samples`` images with the EDM ODE sampler.

    Parameters
    ----------
    denoiser:
        The (possibly quantized) EDM denoiser.
    image_shape:
        (channels, height, width) of the generated images.
    labels:
        Optional one-hot class labels for conditional generation.
    step_callback:
        Called as ``callback(step_index, sigma, x)`` after each time step;
        used by the temporal sparsity analysis to snapshot activations.
    """
    config = config or SamplerConfig()
    rng = np.random.default_rng(config.seed)
    sigmas = karras_sigmas(config.schedule)
    evals_before = denoiser.network_evaluations

    x = rng.normal(size=(num_samples, *image_shape)) * sigmas[0]
    for i in range(len(sigmas) - 1):
        sigma_cur = float(sigmas[i])
        sigma_next = float(sigmas[i + 1])

        denoised = denoiser.denoise(x, sigma_cur, labels)
        d_cur = (x - denoised) / sigma_cur
        x_next = x + (sigma_next - sigma_cur) * d_cur

        if config.second_order and sigma_next > 0:
            denoised_next = denoiser.denoise(x_next, sigma_next, labels)
            d_next = (x_next - denoised_next) / sigma_next
            x_next = x + (sigma_next - sigma_cur) * 0.5 * (d_cur + d_next)

        x = x_next
        if step_callback is not None:
            step_callback(i, sigma_cur, x)

    return SamplingResult(
        images=x,
        num_steps=config.schedule.num_steps,
        network_evaluations=denoiser.network_evaluations - evals_before,
        sigmas=sigmas,
    )


def sample_euler(
    denoiser: EDMDenoiser,
    num_samples: int,
    image_shape: tuple[int, int, int],
    config: SamplerConfig | None = None,
    labels: np.ndarray | None = None,
) -> SamplingResult:
    """First-order Euler sampling (one denoiser evaluation per step)."""
    config = config or SamplerConfig()
    euler_config = SamplerConfig(schedule=config.schedule, second_order=False, seed=config.seed)
    return sample(denoiser, num_samples, image_shape, euler_config, labels)
