"""EDM preconditioning and the hybrid denoiser used by the reproduction.

EDM (Karras et al. 2022) wraps the raw network F_theta with preconditioning:

    D_theta(x; sigma) = c_skip(sigma) * x + c_out(sigma) * F_theta(c_in(sigma) * x; c_noise(sigma))

with

    c_skip  = sigma_data^2 / (sigma^2 + sigma_data^2)
    c_out   = sigma * sigma_data / sqrt(sigma^2 + sigma_data^2)
    c_in    = 1 / sqrt(sigma^2 + sigma_data^2)
    c_noise = ln(sigma) / 4

Because the reproduction has no pretrained checkpoint, the denoiser supports
a *hybrid* mode: the generation dynamics are driven by the analytically
optimal denoiser of a known synthetic data prior
(:class:`~repro.diffusion.prior.GaussianMixturePrior`), while the quantized
U-Net contributes exactly its quantization error

    D(x; sigma) = D_prior(x; sigma) + c_out(sigma) * (F_quant(...) - F_full(...))

so that every property the paper studies — error accumulation across time
steps, per-format degradation, block sensitivity, SiLU/ReLU activation
statistics and temporal per-channel sparsity — is produced by the real
network code path, while image fidelity in the unquantized limit is exact.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from ..nn.layers import Conv2d, Linear, Module
from ..nn.unet import EDMUNet
from .prior import GaussianMixturePrior


@dataclass(frozen=True)
class EDMPrecond:
    """EDM preconditioning coefficients for a given data standard deviation."""

    sigma_data: float = 0.5

    def c_skip(self, sigma: float) -> float:
        return self.sigma_data**2 / (sigma**2 + self.sigma_data**2)

    def c_out(self, sigma: float) -> float:
        return sigma * self.sigma_data / np.sqrt(sigma**2 + self.sigma_data**2)

    def c_in(self, sigma: float) -> float:
        return 1.0 / np.sqrt(sigma**2 + self.sigma_data**2)

    def c_noise(self, sigma: float) -> float:
        return float(np.log(max(sigma, 1e-12)) / 4.0)


@contextlib.contextmanager
def quantization_disabled(model: Module):
    """Temporarily strip all weight/activation quantization specs from a model."""
    saved: list[tuple[Module, object, object]] = []
    for _, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            saved.append((module, module.weight_spec, module.act_spec))
            module.weight_spec = None
            module.act_spec = None
    try:
        yield model
    finally:
        for module, weight_spec, act_spec in saved:
            module.weight_spec = weight_spec
            module.act_spec = act_spec


def model_is_quantized(model: Module) -> bool:
    """True if any layer in the model has a quantization spec attached."""
    for _, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            if module.weight_spec is not None or module.act_spec is not None:
                return True
    return False


class EDMDenoiser:
    """Preconditioned denoiser D(x; sigma) combining the U-Net and the analytic prior.

    Parameters
    ----------
    unet:
        The (possibly quantized, possibly ReLU-swapped) U-Net backbone.
    prior:
        Optional analytic data prior.  When provided, the denoiser runs in
        hybrid mode (see module docstring).  When omitted, the denoiser is
        the plain EDM preconditioning of the raw network.
    sigma_data:
        EDM's data standard deviation; defaults to the prior's if available.
    error_gain:
        Multiplier on the injected network quantization error in hybrid
        mode.  1.0 models a network whose quantization error directly
        perturbs its output, which is the EDM preconditioning behaviour.
    """

    def __init__(
        self,
        unet: EDMUNet,
        prior: GaussianMixturePrior | None = None,
        sigma_data: float | None = None,
        error_gain: float = 1.0,
    ):
        self.unet = unet
        self.prior = prior
        if sigma_data is None:
            sigma_data = prior.data_std() if prior is not None else 0.5
        self.precond = EDMPrecond(sigma_data=float(sigma_data))
        self.error_gain = float(error_gain)
        self.network_evaluations = 0

    # -- raw network call ----------------------------------------------------

    def _network(self, x: np.ndarray, sigma: float, labels: np.ndarray | None) -> np.ndarray:
        c_in = self.precond.c_in(sigma)
        c_noise = self.precond.c_noise(sigma)
        noise_cond = np.full(x.shape[0], c_noise)
        self.network_evaluations += 1
        return self.unet(c_in * x, noise_cond, labels)

    # -- public API ------------------------------------------------------------

    def denoise(self, x: np.ndarray, sigma: float, labels: np.ndarray | None = None) -> np.ndarray:
        """Evaluate D(x; sigma) for one batch of noisy images."""
        x = np.asarray(x, dtype=np.float64)
        sigma = float(sigma)
        if self.prior is None:
            f_x = self._network(x, sigma, labels)
            return self.precond.c_skip(sigma) * x + self.precond.c_out(sigma) * f_x

        d_prior = self.prior.posterior_mean(x, sigma)
        f_current = self._network(x, sigma, labels)
        if not model_is_quantized(self.unet):
            # No quantization error to inject: the network evaluation is still
            # performed (it is what the accelerator executes and what the
            # sparsity analysis observes), but the denoised estimate is the
            # analytic optimum.
            return d_prior
        with quantization_disabled(self.unet):
            f_reference = self._network(x, sigma, labels)
        error = f_current - f_reference
        return d_prior + self.error_gain * self.precond.c_out(sigma) * error

    def __call__(self, x: np.ndarray, sigma: float, labels: np.ndarray | None = None) -> np.ndarray:
        return self.denoise(x, sigma, labels)
