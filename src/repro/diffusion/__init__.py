"""Diffusion substrate: EDM preconditioning, samplers, datasets, FID, adaptation."""

from .datasets import (
    DATASET_LABELS,
    DATASET_SPECS,
    DatasetSpec,
    SyntheticImageDataset,
    dataset_names,
    load_dataset,
)
from .edm import EDMDenoiser, EDMPrecond, model_is_quantized, quantization_disabled
from .fid import (
    FeatureStatistics,
    FIDEvaluator,
    RandomFeatureExtractor,
    compute_statistics,
    frechet_distance,
)
from .finetune import (
    AdaptationReport,
    CalibrationBatch,
    adapt_to_relu,
    make_calibration_batch,
)
from .prior import GaussianMixturePrior, make_smooth_templates
from .sampler import SamplerConfig, SamplingResult, sample, sample_euler
from .schedule import ScheduleConfig, karras_sigmas, linear_sigmas, num_model_evaluations

__all__ = [
    "DATASET_LABELS",
    "DATASET_SPECS",
    "AdaptationReport",
    "CalibrationBatch",
    "DatasetSpec",
    "EDMDenoiser",
    "EDMPrecond",
    "FIDEvaluator",
    "FeatureStatistics",
    "GaussianMixturePrior",
    "RandomFeatureExtractor",
    "SamplerConfig",
    "SamplingResult",
    "ScheduleConfig",
    "SyntheticImageDataset",
    "adapt_to_relu",
    "compute_statistics",
    "dataset_names",
    "frechet_distance",
    "karras_sigmas",
    "linear_sigmas",
    "load_dataset",
    "make_calibration_batch",
    "make_smooth_templates",
    "model_is_quantized",
    "num_model_evaluations",
    "quantization_disabled",
    "sample",
    "sample_euler",
]
