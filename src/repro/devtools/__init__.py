"""Developer tooling: machine-checked invariants for the repro codebase.

Nine PRs in, the correctness of this reproduction rests on invariants that
used to live only in prose and reviewer memory: the wire must stay
pickle-free, duration math must use the monotonic clock, kernel reductions
must keep a batch-shape-independent float association, every dataclass that
crosses the wire needs a registered codec schema, and the lock sites across
``serve/`` and ``core/`` must follow one acquisition discipline.  Large
distributed acquisition systems bake conformance checks into the pipeline
rather than trusting operators; this package is that layer for the repo:

:mod:`repro.devtools.astcheck`
    An AST-walking rule engine (``repro check``) with a registry of
    repo-specific rules (REP001..REP010), ``file:line`` findings, JSON/text
    reporters and inline suppressions
    (``# repro: allow[RULE-ID] reason``).
:mod:`repro.devtools.lockwatch`
    An opt-in runtime race/deadlock detector (``REPRO_LOCKWATCH=1``) that
    wraps ``threading.Lock``/``RLock`` acquisition, builds the cross-thread
    lock-ordering graph while the test suite runs, and fails on ordering
    cycles and held-lock blocking calls, with a report naming the
    acquisition stacks.
"""

from .astcheck import (
    CheckReport,
    Finding,
    render_json,
    render_text,
    rule_catalogue,
    run_checks,
    tracked_python_files,
)
from .lockwatch import LockWatch, LockWatchError

__all__ = [
    "CheckReport",
    "Finding",
    "LockWatch",
    "LockWatchError",
    "render_json",
    "render_text",
    "rule_catalogue",
    "run_checks",
    "tracked_python_files",
]
