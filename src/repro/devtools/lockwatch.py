"""Runtime lock-order race/deadlock detector (``REPRO_LOCKWATCH=1``).

Static rules (REP007/REP008) catch what the AST can see; this module catches
what only a running scheduler exposes.  A :class:`LockWatch` hands out
wrapped ``threading.Lock``/``RLock`` objects that record, per thread, the
stack of locks currently held.  Every successful acquisition while another
lock is held adds an edge ``outer -> inner`` to a global lock-ordering
graph, together with the acquisition stack that created it.  Two violation
classes are reported:

* **ordering cycle** — thread A acquires ``L1`` then ``L2`` while thread B
  acquires ``L2`` then ``L1``.  Each run alone is fine; together they are a
  deadlock waiting for the right interleaving.  Detected the moment the
  second edge closes the cycle, without needing the deadlock to fire.
* **blocking call under a lock** — ``time.sleep`` (the canonical stand-in
  for "this thread parks while pinning a lock") invoked with locks held.
  ``time.sleep(0)`` — the cooperative-yield idiom — is exempt.

Enable it for a test run with::

    REPRO_LOCKWATCH=1 PYTHONPATH=src python -m pytest tests/test_service.py

``tests/conftest.py`` installs the watcher before any repro module creates a
lock and fails the session on recorded violations.  Tests can also build a
private instance (``LockWatch()`` + ``wrap_lock``/``wrap_rlock``) without
touching global state.

The wrappers delegate everything else to the real primitive and implement
the private ``_release_save``/``_acquire_restore``/``_is_owned`` hooks so a
wrapped ``RLock`` still works as the backing lock of a
``threading.Condition``.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["LockWatch", "LockWatchError", "TrackedLock", "Violation", "install_from_env"]

#: Frames kept per recorded acquisition stack (innermost last).
_STACK_LIMIT = 12

#: Real primitives, captured before install() can patch the factories —
#: wrap_lock() must never recurse through a patched threading.Lock.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_SLEEP = time.sleep


class LockWatchError(AssertionError):
    """Raised by :meth:`LockWatch.check` when violations were recorded."""


@dataclass(slots=True)
class Violation:
    """One recorded lock-discipline violation."""

    kind: str  # "lock-order-cycle" | "blocking-under-lock"
    message: str
    stacks: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"[{self.kind}] {self.message}"]
        for stack in self.stacks:
            parts.append(stack.rstrip())
        return "\n".join(parts)


def _capture_stack() -> str:
    frames = traceback.extract_stack(limit=_STACK_LIMIT + 2)[:-2]
    return "".join(traceback.format_list(frames))


class TrackedLock:
    """A ``threading.Lock``/``RLock`` wrapper that reports to a LockWatch."""

    def __init__(self, watch: "LockWatch", inner: Any, name: str):
        self._watch = watch
        self._inner = inner
        self.name = name

    # -- the Lock protocol --------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watch._on_acquired(self)
        return acquired

    def release(self) -> None:
        self._watch._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TrackedLock {self.name} wrapping {self._inner!r}>"

    # -- Condition integration ----------------------------------------------
    # threading.Condition uses these private hooks when its backing lock is
    # not a plain Lock.  Waiting releases the lock, so the held-stack must be
    # popped for the duration of the wait and re-pushed on wakeup.

    def _release_save(self) -> Any:
        self._watch._on_release(self)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._watch._on_acquired(self)

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        # Plain Lock heuristic, mirroring threading.Condition's own fallback.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True


class LockWatch:
    """Collects per-thread held-lock stacks and the global ordering graph."""

    def __init__(self) -> None:
        self._state_lock = _REAL_LOCK()  # guards graph/violations, never wrapped
        self._held = threading.local()
        #: edge (outer name, inner name) -> acquisition stack that created it
        self._edges: dict[tuple[str, str], str] = {}
        self._violations: list[Violation] = []
        self._reported_cycles: set[tuple[str, ...]] = set()
        self._names: dict[str, int] = {}
        self._installed = False
        self._orig_lock: Callable[..., Any] | None = None
        self._orig_rlock: Callable[..., Any] | None = None
        self._orig_sleep: Callable[..., Any] | None = None

    # -- lock construction --------------------------------------------------

    def _unique_name(self, base: str) -> str:
        with self._state_lock:
            count = self._names.get(base, 0)
            self._names[base] = count + 1
        return base if count == 0 else f"{base}#{count}"

    def _site_name(self, kind: str) -> str:
        # Name locks by their creation site: "serve/fleet.py:121 (Lock)".
        for frame in reversed(traceback.extract_stack(limit=16)[:-2]):
            filename = frame.filename.replace("\\", "/")
            if "/devtools/" in filename or "/threading.py" in filename:
                continue
            short = filename.split("/src/", 1)[-1] if "/src/" in filename else filename
            return self._unique_name(f"{short}:{frame.lineno} ({kind})")
        return self._unique_name(f"<unknown> ({kind})")

    def wrap_lock(self, name: str | None = None) -> TrackedLock:
        return TrackedLock(self, _REAL_LOCK(), name or self._site_name("Lock"))

    def wrap_rlock(self, name: str | None = None) -> TrackedLock:
        return TrackedLock(self, _REAL_RLOCK(), name or self._site_name("RLock"))

    # -- held-stack bookkeeping ---------------------------------------------

    def _stack(self) -> list[TrackedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held_locks(self) -> list[str]:
        """Names of locks the calling thread currently holds (outer first)."""
        return [lock.name for lock in self._stack()]

    def _on_acquired(self, lock: TrackedLock) -> None:
        stack = self._stack()
        if stack and stack[-1] is lock:
            # RLock re-entry: no new edge, just track the extra depth.
            stack.append(lock)
            return
        outer = next((held for held in reversed(stack) if held is not lock), None)
        stack.append(lock)
        if outer is None or outer.name == lock.name:
            return
        edge = (outer.name, lock.name)
        acquisition = _capture_stack()
        with self._state_lock:
            if edge in self._edges:
                return
            self._edges[edge] = acquisition
            cycle = self._find_cycle(lock.name, outer.name)
        if cycle is not None:
            self._report_cycle(cycle)

    def _on_release(self, lock: TrackedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return
        # Releasing a lock this thread never acquired through the wrapper
        # (e.g. handed across threads) — nothing to unwind.

    # -- cycle detection ----------------------------------------------------

    def _find_cycle(self, start: str, goal: str) -> list[str] | None:
        """A path start -> ... -> goal in the edge graph (caller holds edge
        goal->start already, so such a path closes a cycle)."""
        path = [start]
        seen = {start}

        def dfs(node: str) -> bool:
            if node == goal:
                return True
            for outer, inner in self._edges:
                if outer == node and inner not in seen:
                    seen.add(inner)
                    path.append(inner)
                    if dfs(inner):
                        return True
                    path.pop()
            return False

        return path if dfs(start) else None

    def _report_cycle(self, path: list[str]) -> None:
        # path is start -> ... -> goal; the closing edge goal -> start exists.
        cycle = path + [path[0]]
        key = tuple(sorted(set(path)))
        with self._state_lock:
            if key in self._reported_cycles:
                return
            self._reported_cycles.add(key)
            stacks = []
            for outer, inner in zip(cycle, cycle[1:]):
                acquisition = self._edges.get((outer, inner), "")
                stacks.append(f"edge {outer} -> {inner} acquired at:\n{acquisition}")
            self._violations.append(
                Violation(
                    kind="lock-order-cycle",
                    message=" -> ".join(cycle),
                    stacks=stacks,
                )
            )

    # -- blocking-call detection --------------------------------------------

    def _watched_sleep(self, seconds: float) -> None:
        # sleep(0) is the cooperative-yield idiom, not a park.
        if seconds > 0:
            held = self.held_locks()
            if held:
                with self._state_lock:
                    self._violations.append(
                        Violation(
                            kind="blocking-under-lock",
                            message=(
                                f"time.sleep({seconds!r}) while holding "
                                f"{', '.join(held)}"
                            ),
                            stacks=[_capture_stack()],
                        )
                    )
        (self._orig_sleep or _REAL_SLEEP)(seconds)

    # -- reporting ----------------------------------------------------------

    def violations(self) -> list[Violation]:
        with self._state_lock:
            return list(self._violations)

    def edges(self) -> dict[tuple[str, str], str]:
        with self._state_lock:
            return dict(self._edges)

    def reset(self) -> None:
        with self._state_lock:
            self._edges.clear()
            self._violations.clear()
            self._reported_cycles.clear()

    def report(self) -> str:
        violations = self.violations()
        if not violations:
            return "lockwatch: no violations recorded"
        parts = [f"lockwatch: {len(violations)} violation(s)"]
        parts.extend(violation.render() for violation in violations)
        return "\n\n".join(parts)

    def check(self) -> None:
        """Raise :class:`LockWatchError` if any violation was recorded."""
        if self.violations():
            raise LockWatchError(self.report())

    # -- global installation -------------------------------------------------

    def install(self) -> None:
        """Patch ``threading.Lock``/``RLock`` factories and ``time.sleep``.

        Locks created *after* this point are tracked; existing locks are
        not.  Install before importing the modules under test (conftest
        does this at collection time when ``REPRO_LOCKWATCH`` is set).
        """
        if self._installed:
            return
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        self._orig_sleep = time.sleep
        threading.Lock = lambda: self.wrap_lock()  # type: ignore[assignment]
        threading.RLock = lambda: self.wrap_rlock()  # type: ignore[assignment]
        time.sleep = self._watched_sleep  # type: ignore[assignment]
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        assert self._orig_lock and self._orig_rlock and self._orig_sleep
        threading.Lock = self._orig_lock  # type: ignore[assignment]
        threading.RLock = self._orig_rlock  # type: ignore[assignment]
        time.sleep = self._orig_sleep  # type: ignore[assignment]
        self._installed = False


#: Process-global instance used by ``install_from_env`` / conftest.
_GLOBAL: LockWatch | None = None


def global_watch() -> LockWatch:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = LockWatch()
    return _GLOBAL


def install_from_env() -> LockWatch | None:
    """Install the global watcher when ``REPRO_LOCKWATCH`` is truthy."""
    import os

    if os.environ.get("REPRO_LOCKWATCH", "").strip().lower() in ("", "0", "false", "no"):
        return None
    watch = global_watch()
    watch.install()
    return watch
