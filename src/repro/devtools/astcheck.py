"""AST invariant linter: the rule engine behind ``repro check``.

The engine parses every tracked Python file under ``src/`` and runs two kinds
of rules over the syntax trees:

* **file rules** see one :class:`FileContext` (tree, source lines, parent
  map) at a time — e.g. REP001's pickle ban or REP002's wall-clock audit;
* **project rules** see the whole :class:`ProjectIndex` at once — e.g.
  REP004's schema-coverage check must correlate dataclass definitions in one
  module with ``register_dataclass`` calls in another.

Findings carry ``file:line``, a rule id, a severity and a message, and are
rendered by :func:`render_text` / :func:`render_json`.  A finding can be
acknowledged in place with an inline suppression::

    now = time.time()  # repro: allow[REP002] display-only timestamp

The suppression must name the rule id *and* carry a reason — a reason-less
suppression suppresses nothing and is itself reported (REP010), so the
"why" of every exception to an invariant lives next to the code.  A
suppression comment alone on a line applies to the following line (for
statements too long to annotate in place).

Rule catalogue (one line each; the rule docstrings carry the full
rationale):

========  =======================================================================
REP001    ``pickle`` only on the allowlisted legacy path (``core/artifacts.py``)
REP002    no wall-clock ``time.time`` — durations use ``time.monotonic``
REP003    no ``reduceat``/pairwise-association reductions in kernel backends
REP004    every wire-reachable dataclass has a registered codec schema
REP005    metric names match ``repro_[a-z_]+`` and are created at one site
REP006    hot-path dataclasses declare ``slots=True``
REP007    attributes documented ``#: guarded by _lock`` only touched under it
REP008    no blocking call while a lock is held
REP009    ``except Exception`` must re-raise, return, or log via the event log
REP010    suppressions are well-formed, justified, and actually used
========  =======================================================================
"""

from __future__ import annotations

import ast
import io
import json
import re
import subprocess
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "CheckReport",
    "FileContext",
    "Finding",
    "ProjectIndex",
    "render_json",
    "render_text",
    "rule_catalogue",
    "run_checks",
    "tracked_python_files",
]

#: The inline suppression syntax: "repro: allow" + [rule ids] + reason,
#: inside a comment (spelled out in the module docstring above).
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")

#: Well-formed rule ids inside the brackets.
_RULE_ID_RE = re.compile(r"^REP\d{3}$")

#: Reserved id for files the engine itself cannot process (syntax errors).
PARSE_RULE_ID = "REP000"


@dataclass(slots=True)
class Finding:
    """One rule violation (or acknowledged exception) at ``path:line``."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    suppressed: bool = False
    reason: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass(frozen=True, slots=True)
class RuleInfo:
    """Registry entry: identity, severity and the one-line rationale."""

    id: str
    name: str
    severity: str
    rationale: str
    project: bool
    check: Callable[..., Iterable[Finding]]


_RULES: dict[str, RuleInfo] = {}


def rule(
    rule_id: str, name: str, rationale: str, severity: str = "error", project: bool = False
) -> Callable[[Callable[..., Iterable[Finding]]], Callable[..., Iterable[Finding]]]:
    """Register a rule function under ``rule_id`` (decorator)."""

    def decorate(fn: Callable[..., Iterable[Finding]]) -> Callable[..., Iterable[Finding]]:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = RuleInfo(
            id=rule_id,
            name=name,
            severity=severity,
            rationale=rationale,
            project=project,
            check=fn,
        )
        return fn

    return decorate


def rule_catalogue() -> list[RuleInfo]:
    """Every registered rule, id-ordered (``repro check --list-rules``)."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


# -- file / project context -------------------------------------------------------


@dataclass(slots=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    path: str
    comment_line: int
    target_line: int
    rule_ids: tuple[str, ...]
    reason: str
    used: bool = False


class FileContext:
    """One parsed source file: tree, lines, parent links and suppressions."""

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.suppressions = _parse_suppressions(relpath, source)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def finding(self, info_id: str, node: ast.AST, message: str) -> Finding:
        info = _RULES[info_id]
        return Finding(
            rule=info_id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            message=message,
            severity=info.severity,
        )


def _parse_suppressions(relpath: str, source: str) -> list[Suppression]:
    # Tokenize so only *real* comments count — a docstring that quotes the
    # suppression syntax (this engine's own documentation, say) is not a
    # suppression.
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # unreachable after ast.parse
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        ids = tuple(part.strip() for part in match.group(1).split(",") if part.strip())
        reason = match.group(2).strip().lstrip("-: ").strip()
        index = token.start[0]
        # A suppression alone on its line annotates the *next* line.
        standalone = token.line[: token.start[1]].strip() == ""
        suppressions.append(
            Suppression(
                path=relpath,
                comment_line=index,
                target_line=index + 1 if standalone else index,
                rule_ids=ids,
                reason=reason,
            )
        )
    return suppressions


class ProjectIndex:
    """Every parsed file plus cross-file indexes for the project rules."""

    def __init__(self, contexts: list[FileContext]):
        self.contexts = contexts
        #: class name -> (context, ClassDef, {field name -> annotation text})
        self.dataclasses: dict[str, tuple[FileContext, ast.ClassDef, dict[str, str]]] = {}
        #: class names with a ``register_dataclass``/``register_schema(type=...)`` entry
        self.registered: set[str] = set()
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and _dataclass_decorator(node) is not None:
                    fields = {
                        stmt.target.id: ast.unparse(stmt.annotation)
                        for stmt in node.body
                        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
                    }
                    self.dataclasses[node.name] = (ctx, node, fields)
                elif isinstance(node, ast.Call):
                    name = _call_name(node)
                    if name == "register_dataclass" and node.args:
                        first = node.args[0]
                        if isinstance(first, ast.Name):
                            self.registered.add(first.id)
                    elif name == "register_schema":
                        for keyword in node.keywords:
                            if keyword.arg == "type" and isinstance(keyword.value, ast.Name):
                                self.registered.add(keyword.value.id)


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator of a class, if any."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


# -- engine -----------------------------------------------------------------------


@dataclass(slots=True)
class CheckReport:
    """Outcome of one :func:`run_checks` pass."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
        }


def tracked_python_files(root: Path) -> list[Path]:
    """Python files under ``root/src`` that the repository tracks.

    Uses ``git ls-files`` so generated/ignored files never enter the gate;
    outside a work tree (an sdist, a bare checkout) it falls back to a
    filesystem walk of ``src/``.
    """
    root = Path(root)
    try:
        listing = subprocess.run(
            # --others --exclude-standard adds files not yet committed, so a
            # brand-new module cannot escape the gate until its first commit.
            ["git", "-C", str(root), "ls-files", "--cached", "--others",
             "--exclude-standard", "src/**/*.py", "src/*.py"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()
        files = [root / line for line in sorted(set(listing)) if line.strip()]
    except (OSError, subprocess.CalledProcessError):
        files = sorted((root / "src").rglob("*.py"))
    return [path for path in files if path.is_file()]


def run_checks(
    files: Iterable[Path],
    root: Path,
    rules: Iterable[str] | None = None,
) -> CheckReport:
    """Run the (selected) rules over ``files``; paths report relative to ``root``.

    ``rules=None`` runs everything, including REP010's unused-suppression
    audit; an explicit rule subset skips that audit (a suppression for a
    rule that was not run is not evidence of a stale suppression).
    """
    root = Path(root)
    selected = sorted(_RULES) if rules is None else sorted(set(rules))
    unknown = [rule_id for rule_id in selected if rule_id not in _RULES]
    if unknown:
        raise ValueError(f"unknown rule id(s) {unknown}; known rules: {sorted(_RULES)}")
    report = CheckReport(rules_run=selected)

    contexts: list[FileContext] = []
    for path in files:
        path = Path(path)
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(FileContext(path, relpath, source))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            report.findings.append(
                Finding(
                    rule=PARSE_RULE_ID,
                    path=relpath,
                    line=line,
                    message=f"file cannot be checked: {exc}",
                )
            )
    report.files_checked = len(contexts)

    raw: list[Finding] = []
    project = ProjectIndex(contexts)
    for rule_id in selected:
        info = _RULES[rule_id]
        if info.project:
            raw.extend(info.check(project))
        else:
            for ctx in contexts:
                raw.extend(info.check(ctx))

    # Apply suppressions: a finding is acknowledged when a well-formed
    # suppression (known rule id + reason) targets its line and names its rule.
    by_location: dict[tuple[str, int], list[Suppression]] = {}
    for ctx in contexts:
        for suppression in ctx.suppressions:
            by_location.setdefault((ctx.relpath, suppression.target_line), []).append(suppression)
    for finding in raw:
        matched = None
        for suppression in by_location.get((finding.path, finding.line), ()):
            if finding.rule in suppression.rule_ids and suppression.reason:
                matched = suppression
                break
        if matched is not None:
            matched.used = True
            finding.suppressed = True
            finding.reason = matched.reason
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    # REP010: suppression hygiene (only meaningful over the full rule set —
    # a partial run cannot tell a stale suppression from a not-run rule).
    if "REP010" in selected:
        audit_unused = rules is None
        for ctx in contexts:
            report.findings.extend(_audit_suppressions(ctx, audit_unused=audit_unused))

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def render_text(report: CheckReport, verbose: bool = False) -> str:
    """Human-readable report: one ``path:line: RULE message`` line per finding."""
    lines = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: [{finding.severity}] {finding.rule} {finding.message}")
    if verbose:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()}: [suppressed] {finding.rule} "
                f"{finding.message} (reason: {finding.reason})"
            )
    lines.append(
        f"repro check: {len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, {report.files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


# -- shared AST helpers -----------------------------------------------------------


def _attribute_chain(node: ast.expr) -> str:
    """Dotted-name text of an expression, or "" when it is not a plain chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


# -- REP001 -----------------------------------------------------------------------

#: The one module allowed to import pickle: the artifact store's read-only
#: legacy (v1 file format) path and its explicit migration entry point.
_PICKLE_ALLOWLIST = {"src/repro/core/artifacts.py"}
_PICKLE_MODULES = {"pickle", "cPickle", "dill", "cloudpickle"}


@rule(
    "REP001",
    "no-pickle",
    "The wire and the artifact store are pickle-free by design (PR 4): pickles "
    "execute arbitrary code on load and break cross-version compatibility.  "
    "Only the legacy v1 artifact path in core/artifacts.py may touch pickle.",
)
def _check_no_pickle(ctx: FileContext) -> Iterator[Finding]:
    if ctx.relpath in _PICKLE_ALLOWLIST:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in _PICKLE_MODULES:
                    yield ctx.finding(
                        "REP001",
                        node,
                        f"import of {alias.name!r}: pickle is allowed only on the "
                        "legacy artifact path in core/artifacts.py",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _PICKLE_MODULES:
                yield ctx.finding(
                    "REP001",
                    node,
                    f"import from {node.module!r}: pickle is allowed only on the "
                    "legacy artifact path in core/artifacts.py",
                )


# -- REP002 -----------------------------------------------------------------------


@rule(
    "REP002",
    "monotonic-durations",
    "time.time() jumps under NTP steps/slews and DST; every duration, timeout "
    "or rate-limit computation must use time.monotonic().  Display-only wall "
    "timestamps carry an annotated suppression.",
)
def _check_wall_clock(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Attribute)
            and node.attr == "time"
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
        ):
            continue
        # Climb to the nearest statement, noting arithmetic/comparison parents:
        # `time.time() - t0` is always a bug; a bare read needs a justification.
        in_math = False
        cursor: ast.AST | None = node
        while cursor is not None and not isinstance(cursor, ast.stmt):
            if isinstance(cursor, (ast.BinOp, ast.Compare, ast.AugAssign)):
                in_math = True
            cursor = ctx.parent(cursor)
        if in_math:
            message = (
                "time.time() used in arithmetic/comparison: duration math must "
                "use time.monotonic()"
            )
        else:
            message = (
                "wall-clock time.time() read: use time.monotonic() for durations, "
                "or suppress with a reason for display-only timestamps"
            )
        yield ctx.finding("REP002", node, message)


# -- REP003 -----------------------------------------------------------------------


@rule(
    "REP003",
    "no-pairwise-reductions",
    "np.add.reduceat (and pairwise-association reductions generally) make "
    "float sums depend on batch shape by 1 ulp — the PR 8 bit-identity bug.  "
    "Kernel backends must reduce with a shape-independent association "
    "(sequential fancy-indexed accumulation, e.g. _segment_sums).",
)
def _check_reduceat(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.relpath.startswith("src/repro/accelerator/backends/"):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute) and node.attr in ("reduceat", "logsumexp"):
            yield ctx.finding(
                "REP003",
                node,
                f"{_attribute_chain(node) or node.attr} in a kernel backend: "
                "pairwise-association reductions silently change results with "
                "batch shape; use a sequential segment accumulation",
            )


# -- REP004 -----------------------------------------------------------------------

#: Identifiers that look like types but never need registration.
_ANNOTATION_NOISE = {
    "Any", "Callable", "Iterable", "Iterator", "Mapping", "Sequence", "Optional",
    "Union", "ClassVar", "Final", "None", "np", "numpy", "ndarray", "field",
    "str", "int", "float", "bool", "bytes", "list", "dict", "tuple", "set",
    "frozenset", "object", "type", "BaseException", "Exception", "threading",
    "Path", "Enum",
}


@rule(
    "REP004",
    "schema-coverage",
    "Every dataclass reachable from the wire surfaces (serve/specs.py, "
    "core/schemas.py registrations) must have a register_dataclass/"
    "register_schema entry, or a new field silently makes a result "
    "unstorable/unshippable at runtime.",
    project=True,
)
def _check_schema_coverage(project: ProjectIndex) -> Iterator[Finding]:
    seeds = sorted(project.registered & set(project.dataclasses))
    visited: set[str] = set()
    queue = list(seeds)
    while queue:
        name = queue.pop()
        if name in visited:
            continue
        visited.add(name)
        _, _, fields = project.dataclasses[name]
        for field_name, annotation in fields.items():
            for ident in _IDENTIFIER_RE.findall(annotation):
                if ident in _ANNOTATION_NOISE or ident not in project.dataclasses:
                    continue
                if ident not in project.registered and ident not in visited:
                    ctx, node, _ = project.dataclasses[ident]
                    yield ctx.finding(
                        "REP004",
                        node,
                        f"dataclass {ident} is wire-reachable (field "
                        f"{name}.{field_name}) but has no register_dataclass/"
                        "register_schema entry",
                    )
                if ident not in visited:
                    queue.append(ident)


# -- REP005 -----------------------------------------------------------------------

_METRIC_FACTORIES = {"counter", "gauge", "histogram"}
_METRIC_NAME_RE = re.compile(r"^repro_[a-z_]+$")


@rule(
    "REP005",
    "metric-names",
    "Metric names form the stable scrape contract: they must match "
    "repro_[a-z_]+ and be created at exactly one call site, so a renamed or "
    "duplicated metric cannot silently fork the time series.",
    project=True,
)
def _check_metric_names(project: ProjectIndex) -> Iterator[Finding]:
    sites: dict[str, list[tuple[FileContext, ast.Call]]] = {}
    for ctx in project.contexts:
        if ctx.relpath == "src/repro/core/telemetry.py":
            continue  # the registry itself (metric classes, not call sites)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_FACTORIES
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            sites.setdefault(name, []).append((ctx, node))
            if not _METRIC_NAME_RE.match(name):
                yield ctx.finding(
                    "REP005",
                    node,
                    f"metric name {name!r} does not match repro_[a-z_]+",
                )
    for name, occurrences in sorted(sites.items()):
        if len(occurrences) > 1:
            locations = ", ".join(f"{ctx.relpath}:{node.lineno}" for ctx, node in occurrences)
            for ctx, node in occurrences:
                yield ctx.finding(
                    "REP005",
                    node,
                    f"metric {name!r} is created at {len(occurrences)} sites "
                    f"({locations}); each metric must have exactly one owner",
                )


# -- REP006 -----------------------------------------------------------------------

_SLOTS_SCOPES = ("src/repro/accelerator/", "src/repro/core/columnar.py")


@rule(
    "REP006",
    "hot-path-slots",
    "Hot-path dataclasses (accelerator/, core/columnar.py) are constructed in "
    "bulk by the simulation kernels; slots=True removes the per-instance "
    "__dict__ (smaller, faster, and typo-assignments fail loudly).",
)
def _check_slots(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.relpath.startswith(_SLOTS_SCOPES[0]) and ctx.relpath != _SLOTS_SCOPES[1]:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decorator = _dataclass_decorator(node)
        if decorator is None:
            continue
        has_slots = isinstance(decorator, ast.Call) and any(
            keyword.arg == "slots"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in decorator.keywords
        )
        if not has_slots:
            yield ctx.finding(
                "REP006",
                node,
                f"hot-path dataclass {node.name} must declare @dataclass(slots=True)",
            )


# -- REP007 -----------------------------------------------------------------------

_GUARD_RE = re.compile(r"#:\s*guarded by\s+(?:self\.)?(\w+)")


def _guarded_attributes(ctx: FileContext, cls: ast.ClassDef) -> dict[str, str]:
    """``{attr: lock_attr}`` declared via ``#: guarded by _lock`` comments.

    The comment sits on (or directly above) either a dataclass field
    declaration in the class body or a ``self.attr = ...`` assignment in
    ``__init__``.
    """

    def guard_near(lineno: int) -> str | None:
        if 1 <= lineno <= len(ctx.lines):
            match = _GUARD_RE.search(ctx.lines[lineno - 1])
            if match:
                return match.group(1)
        # A standalone comment line directly above also counts.
        if 2 <= lineno and ctx.lines[lineno - 2].strip().startswith("#"):
            match = _GUARD_RE.search(ctx.lines[lineno - 2])
            if match:
                return match.group(1)
        return None

    def assigned_attrs(node: ast.stmt) -> Iterator[str]:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr

    guarded: dict[str, str] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            lock = guard_near(stmt.lineno)
            if lock:
                guarded[stmt.target.id] = lock
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name in (
            "__init__",
            "__post_init__",
        ):
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    lock = guard_near(node.lineno)
                    if lock:
                        for attr in assigned_attrs(node):
                            guarded[attr] = lock
    return guarded


def _walk_with_locks(
    node: ast.AST, held: frozenset[str], visit: Callable[[ast.AST, frozenset[str]], None]
) -> None:
    """Depth-first walk tracking which ``self.<lock>`` contexts enclose a node."""
    visit(node, held)
    if isinstance(node, ast.With):
        entered = set(held)
        for item in node.items:
            chain = _attribute_chain(item.context_expr)
            if chain.startswith("self."):
                entered.add(chain[len("self.") :])
        for item in node.items:
            _walk_with_locks(item.context_expr, held, visit)
        for child in node.body:
            _walk_with_locks(child, frozenset(entered), visit)
        return
    for child in ast.iter_child_nodes(node):
        _walk_with_locks(child, held, visit)


@rule(
    "REP007",
    "lock-guarded-attributes",
    "An attribute documented `#: guarded by _lock` is part of a class's "
    "locking contract; touching it outside `with self._lock` is a data race "
    "waiting for a scheduler to expose it.  Methods named *_locked are "
    "called with the lock already held and are exempt, as is __init__ "
    "(publication happens-before thread start).",
)
def _check_guarded_attributes(ctx: FileContext) -> Iterator[Finding]:
    findings: list[Finding] = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guarded = _guarded_attributes(ctx, cls)
        if not guarded:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__post_init__") or method.name.endswith("_locked"):
                continue

            def visit(node: ast.AST, held: frozenset[str]) -> None:
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                    and guarded[node.attr] not in held
                ):
                    findings.append(
                        ctx.finding(
                            "REP007",
                            node,
                            f"self.{node.attr} is documented '#: guarded by "
                            f"{guarded[node.attr]}' but is touched outside "
                            f"'with self.{guarded[node.attr]}'",
                        )
                    )

            _walk_with_locks(method, frozenset(), visit)
    yield from findings


# -- REP008 -----------------------------------------------------------------------

#: With-context expressions treated as lock acquisitions (lowercased match).
_LOCKISH_RE = re.compile(r"(lock|condition|mutex|_transitions)\w*(\(\))?$", re.IGNORECASE)

#: Call targets that block the calling thread.
_BLOCKING_CHAINS = {"time.sleep"}
_BLOCKING_ATTRS = {"urlopen", "result"}


def _lockish(expr: ast.expr) -> str | None:
    """The dotted text of ``expr`` when it looks like a lock acquisition."""
    node = expr.func if isinstance(expr, ast.Call) else expr
    chain = _attribute_chain(node)
    if chain and _LOCKISH_RE.search(chain.split(".")[-1]):
        return chain
    return None


@rule(
    "REP008",
    "no-blocking-under-lock",
    "A blocking call (sleep, future.result, urlopen, queue.get, thread.join) "
    "made while holding a lock turns every sibling of that lock into the "
    "slowest I/O on the box — and into a deadlock once the blocked-on work "
    "needs the same lock.  Condition.wait on the *held* condition is the one "
    "sanctioned wait (it releases the lock).",
)
def _check_blocking_under_lock(ctx: FileContext) -> Iterator[Finding]:
    findings: list[Finding] = []

    def visit_function(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        def walk(node: ast.AST, held: tuple[str, ...]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                return  # nested defs run later, under their caller's locks
            if isinstance(node, ast.With):
                entered = list(held)
                for item in node.items:
                    lock = _lockish(item.context_expr)
                    if lock is not None:
                        entered.append(lock)
                for child in node.body:
                    walk(child, tuple(entered))
                return
            if isinstance(node, ast.Call) and held:
                chain = _attribute_chain(node.func)
                blocking = None
                if chain in _BLOCKING_CHAINS:
                    blocking = chain
                elif isinstance(node.func, ast.Attribute):
                    attr = node.func.attr
                    receiver = _attribute_chain(node.func.value)
                    if attr in _BLOCKING_ATTRS:
                        blocking = chain or attr
                    elif attr == "wait" and receiver not in held:
                        # Waiting on anything but the held condition keeps the
                        # lock pinned for the whole wait.
                        blocking = chain or attr
                    elif attr == "get" and "queue" in receiver.lower():
                        blocking = chain or attr
                    elif attr == "join" and (
                        "thread" in receiver.lower()
                        or receiver.split(".")[-1] in ("_scheduler", "_monitor", "_watcher")
                    ):
                        blocking = chain or attr
                if blocking is not None:
                    findings.append(
                        ctx.finding(
                            "REP008",
                            node,
                            f"blocking call {blocking}() while holding "
                            f"{', '.join(held)}",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                walk(child, held)

        walk(fn, ())

    for fn in _functions(ctx.tree):
        visit_function(fn)
    yield from findings


# -- REP009 -----------------------------------------------------------------------

#: Handler calls that count as "the error was routed somewhere deliberate".
_HANDLED_CALLS = {"emit", "mark_failed", "fail", "set_exception", "mark_cancelled"}


@rule(
    "REP009",
    "no-silent-except",
    "`except Exception` that neither re-raises, returns a sentinel, nor logs "
    "via the event log turns real failures (a fleet completion lost, a "
    "corrupted artifact) into silence.  Intentional swallows carry an "
    "annotated suppression explaining why.",
)
def _check_silent_except(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not isinstance(node.type, ast.Name):
            continue
        if node.type.id not in ("Exception", "BaseException"):
            continue
        handled = False
        for child in ast.walk(ast.Module(body=node.body, type_ignores=[])):
            if isinstance(child, (ast.Raise, ast.Return)):
                handled = True
                break
            if isinstance(child, ast.Call):
                name = _call_name(child)
                if name in _HANDLED_CALLS:
                    handled = True
                    break
        if not handled:
            yield ctx.finding(
                "REP009",
                node,
                "except Exception swallows the error: re-raise, return an "
                "explicit sentinel, or log it via the event log "
                "(telemetry.event_log().emit)",
            )


# -- REP010 -----------------------------------------------------------------------


@rule(
    "REP010",
    "suppression-hygiene",
    "A suppression is a signed waiver: it must name a known rule, carry a "
    "reason, and still match a real finding — otherwise it is noise that "
    "hides future regressions.",
)
def _check_suppression_stub(ctx: FileContext) -> Iterator[Finding]:
    # REP010 findings are produced by the engine (``_audit_suppressions``)
    # after suppression matching; the registry entry exists so the rule shows
    # up in the catalogue and can be selected/suppressed like any other.
    return iter(())


def _audit_suppressions(ctx: FileContext, audit_unused: bool) -> Iterator[Finding]:
    for suppression in ctx.suppressions:
        anchor = ast.Module(body=[], type_ignores=[])  # findings carry their own line
        del anchor
        if not suppression.rule_ids:
            yield Finding(
                rule="REP010",
                path=ctx.relpath,
                line=suppression.comment_line,
                message="suppression names no rule id: use # repro: allow[REPnnn] reason",
            )
            continue
        bad_ids = [rid for rid in suppression.rule_ids if not _RULE_ID_RE.match(rid)]
        unknown = [
            rid
            for rid in suppression.rule_ids
            if _RULE_ID_RE.match(rid) and rid not in _RULES and rid != PARSE_RULE_ID
        ]
        if bad_ids or unknown:
            yield Finding(
                rule="REP010",
                path=ctx.relpath,
                line=suppression.comment_line,
                message=f"suppression names unknown rule id(s) {bad_ids + unknown}",
            )
            continue
        if not suppression.reason:
            yield Finding(
                rule="REP010",
                path=ctx.relpath,
                line=suppression.comment_line,
                message=(
                    "suppression has no reason; a waiver must say why "
                    f"({', '.join(suppression.rule_ids)} stays unsuppressed)"
                ),
            )
            continue
        if audit_unused and not suppression.used:
            yield Finding(
                rule="REP010",
                path=ctx.relpath,
                line=suppression.comment_line,
                message=(
                    f"unused suppression for {', '.join(suppression.rule_ids)}: "
                    "nothing on this line triggers the rule any more"
                ),
            )
