"""Analysis utilities backing each table and figure of the paper."""

from .breakdown import BLOCK_TYPES, BreakdownReport, cost_breakdown
from .distributions import (
    ActivationDistribution,
    LevelUtilization,
    compare_activation_distributions,
    distribution_summary,
    measure_model_sparsity,
    quantization_level_utilization,
    silu_minimum,
    silu_vs_relu_level_utilization,
)
from .sensitivity import BlockSensitivity, SensitivityReport, block_sensitivity_sweep
from .speedup import (
    FormatSpeedup,
    SystemEvaluation,
    WorkloadSpeedup,
    figure1_summary,
    summarize_hardware,
)
from .tables import format_percentage, format_speedup, format_table, render_ascii_map

__all__ = [
    "BLOCK_TYPES",
    "ActivationDistribution",
    "BlockSensitivity",
    "BreakdownReport",
    "FormatSpeedup",
    "LevelUtilization",
    "SensitivityReport",
    "SystemEvaluation",
    "WorkloadSpeedup",
    "block_sensitivity_sweep",
    "compare_activation_distributions",
    "cost_breakdown",
    "distribution_summary",
    "figure1_summary",
    "format_percentage",
    "format_speedup",
    "format_table",
    "measure_model_sparsity",
    "quantization_level_utilization",
    "render_ascii_map",
    "silu_minimum",
    "silu_vs_relu_level_utilization",
    "summarize_hardware",
]
