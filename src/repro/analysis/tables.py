"""Plain-text rendering of the paper's tables and figure data.

Every benchmark prints the rows/series the corresponding paper artefact
reports, using these helpers so the output format is consistent and easy to
diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a simple aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) >= 1000 or abs(cell) < 0.01):
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def format_percentage(value: float) -> str:
    """Render a 0-1 fraction as a percentage string."""
    return f"{100.0 * value:.1f}%"


def format_speedup(value: float) -> str:
    """Render a speed-up factor ("6.91x")."""
    return f"{value:.2f}x"


def render_ascii_map(binary_map, zero_char: str = "#", one_char: str = ".") -> str:
    """Render a binary channel x time-step map as ASCII art (Fig. 7 style).

    By convention ``1`` (sparse / mostly-zero) renders as ``#`` (black in the
    paper's figure) and ``0`` (dense) as ``.`` (white).
    """
    lines = []
    for row in binary_map:
        lines.append("".join(zero_char if cell else one_char for cell in row))
    return "\n".join(lines)
