"""Computation and memory breakdown by block type (Fig. 4).

The paper reports that Conv+SiLU blocks account for more than 90% of total
computation and 85% of total memory, which is what justifies focusing the
4-bit quantization (and the accelerator) on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.costs import layer_cost_table
from ..nn.unet import BLOCK_ATTENTION, BLOCK_CONV, BLOCK_EMBEDDING, BLOCK_SKIP, EDMUNet

BLOCK_TYPES = (BLOCK_CONV, BLOCK_SKIP, BLOCK_EMBEDDING, BLOCK_ATTENTION)


@dataclass
class BreakdownReport:
    """Per-block-type compute and memory shares of one model."""

    workload: str
    compute_share: dict[str, float]
    memory_share: dict[str, float]
    total_macs: float
    total_memory_elements: float

    def dominant_type(self) -> str:
        return max(self.compute_share, key=self.compute_share.get)

    def conv_compute_share(self) -> float:
        return self.compute_share.get(BLOCK_CONV, 0.0)

    def conv_memory_share(self) -> float:
        return self.memory_share.get(BLOCK_CONV, 0.0)


def cost_breakdown(model: EDMUNet, workload_name: str = "") -> BreakdownReport:
    """Compute the Fig. 4 breakdown for one U-Net.

    Compute is measured in MACs; memory as stored elements (weights plus
    input activations), both independent of precision so the shares reflect
    the architecture rather than the quantization scheme.
    """
    table = layer_cost_table(model)
    macs = {block_type: 0.0 for block_type in BLOCK_TYPES}
    memory = {block_type: 0.0 for block_type in BLOCK_TYPES}
    for cost in table:
        macs[cost.block_type] = macs.get(cost.block_type, 0.0) + cost.macs
        memory[cost.block_type] = memory.get(cost.block_type, 0.0) + (
            cost.weight_elements + cost.activation_elements
        )
    total_macs = sum(macs.values())
    total_memory = sum(memory.values())
    compute_share = {k: (v / total_macs if total_macs else 0.0) for k, v in macs.items()}
    memory_share = {k: (v / total_memory if total_memory else 0.0) for k, v in memory.items()}
    return BreakdownReport(
        workload=workload_name,
        compute_share=compute_share,
        memory_share=memory_share,
        total_macs=total_macs,
        total_memory_elements=total_memory,
    )
