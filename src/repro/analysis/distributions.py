"""Activation distribution and quantization-level-utilization analysis (Figs. 5 and 6).

Two observations motivate the SiLU→ReLU swap:

* **Fig. 5**: the output distribution of Conv+SiLU spans ``[-0.278, inf)``
  whereas Conv+ReLU spans ``[0, inf)`` — the small negative range forces a
  signed activation format.
* **Fig. 6**: for inputs in ``[-1, 1]``, SiLU outputs occupy only 10 of the
  16 signed-INT4 levels; ReLU outputs occupy all 16 UINT4 levels, so the
  unsigned format wastes no codes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import functional as F
from ..nn.layers import Activation
from ..nn.unet import EDMUNet
from ..quant.formats import INT4, UINT4, IntegerFormat
from ..quant.uniform import used_levels


@dataclass
class ActivationDistribution:
    """Summary statistics of an activation population (one Fig. 5 panel)."""

    activation: str
    minimum: float
    maximum: float
    mean: float
    std: float
    negative_fraction: float
    zero_fraction: float
    histogram: np.ndarray
    bin_edges: np.ndarray


def distribution_summary(
    values: np.ndarray, activation: str, bins: int = 64
) -> ActivationDistribution:
    """Histogram + summary statistics of a flattened activation tensor."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    histogram, bin_edges = np.histogram(flat, bins=bins)
    return ActivationDistribution(
        activation=activation,
        minimum=float(flat.min()) if flat.size else 0.0,
        maximum=float(flat.max()) if flat.size else 0.0,
        mean=float(flat.mean()) if flat.size else 0.0,
        std=float(flat.std()) if flat.size else 0.0,
        negative_fraction=float(np.mean(flat < 0)) if flat.size else 0.0,
        zero_fraction=float(np.mean(flat == 0)) if flat.size else 0.0,
        histogram=histogram,
        bin_edges=bin_edges,
    )


def compare_activation_distributions(
    model: EDMUNet,
    relu_model: EDMUNet,
    block_name: str | None = None,
    batch: int = 2,
    seed: int = 0,
) -> tuple[ActivationDistribution, ActivationDistribution]:
    """Fig. 5: distribution of one Conv+SiLU layer's output vs its Conv+ReLU twin.

    Both models are driven with the same noisy input; the recorded tensor is
    the non-linearity output of the selected block (the convolution input the
    accelerator consumes).
    """
    rng = np.random.default_rng(seed)
    shape = (
        batch,
        model.config.in_channels,
        model.config.img_resolution,
        model.config.img_resolution,
    )
    x = rng.normal(size=shape)
    noise_cond = np.full(batch, 0.1)

    infos = model.block_infos()
    target = block_name or infos[len(infos) // 2].name

    outputs = []
    for candidate in (model, relu_model):
        candidate.set_recording(True)
        try:
            candidate(x, noise_cond)
            block = candidate.get_block(target)
            recorded = block.act1.last_output
            if recorded is None:
                raise RuntimeError(f"block {target!r} recorded no activation output")
            outputs.append(recorded)
        finally:
            candidate.set_recording(False)
    silu_summary = distribution_summary(outputs[0], activation=model.config.activation)
    relu_summary = distribution_summary(outputs[1], activation=relu_model.config.activation)
    return silu_summary, relu_summary


@dataclass
class LevelUtilization:
    """How many quantization levels a (activation fn, format) pair uses (Fig. 6)."""

    activation: str
    format_name: str
    levels_used: int
    levels_available: int

    @property
    def utilization(self) -> float:
        return self.levels_used / self.levels_available


def quantization_level_utilization(
    activation: str,
    fmt: IntegerFormat,
    input_range: tuple[float, float] = (-1.0, 1.0),
    num_points: int = 20001,
) -> LevelUtilization:
    """Count the distinct codes used when quantizing activation(x) over an input range.

    With ``x`` in [-1, 1]: SiLU's output lies in [-0.269, 0.731], which maps
    onto only 10 of the 16 signed INT4 codes; ReLU's output lies in [0, 1]
    and uses all 16 UINT4 codes.
    """
    x = np.linspace(input_range[0], input_range[1], num_points)
    values = F.activation_fn(activation)(x)
    levels = used_levels(values, fmt)
    return LevelUtilization(
        activation=activation,
        format_name=fmt.name,
        levels_used=levels,
        levels_available=fmt.num_levels,
    )


def silu_vs_relu_level_utilization() -> tuple[LevelUtilization, LevelUtilization]:
    """The exact Fig. 6 comparison: SiLU/INT4 versus ReLU/UINT4."""
    return (
        quantization_level_utilization("silu", INT4),
        quantization_level_utilization("relu", UINT4),
    )


def silu_minimum() -> float:
    """The minimum of SiLU(x), approximately -0.278 (quoted in Sec. III-B)."""
    return float(F.SILU_MIN)


def measure_model_sparsity(
    model: EDMUNet, batch: int = 2, zero_tolerance_rel: float = 0.0, seed: int = 0
) -> float:
    """Average activation sparsity of a model on random noisy inputs.

    Used to reproduce the Sec. III-C claim: ~10% for the SiLU model under a
    quantization-aware zero tolerance, ~65% for the ReLU model.
    """
    rng = np.random.default_rng(seed)
    shape = (
        batch,
        model.config.in_channels,
        model.config.img_resolution,
        model.config.img_resolution,
    )
    x = rng.normal(size=shape)
    model.set_recording(True)
    try:
        model(x, np.full(batch, 0.1))
        values = []
        for _, module in model.named_modules():
            if (
                isinstance(module, Activation)
                and module.last_output is not None
                and module.last_output.ndim == 4
            ):
                out = module.last_output
                tol = 0.0
                if zero_tolerance_rel > 0:
                    tol = zero_tolerance_rel * float(np.max(np.abs(out)))
                values.append(float(np.mean(np.abs(out) <= tol)))
    finally:
        model.set_recording(False)
    return float(np.mean(values)) if values else 0.0
