"""System-level speed-up and energy roll-ups (Fig. 1 and Fig. 12).

Aggregates the per-workload hardware evaluations into the quantities the
paper headlines:

* per-dataset speed-up and energy saving of the DPE+SPE accelerator over the
  dense 2-DPE baseline (Fig. 12, top; paper average 1.83x / 51.5%);
* the total speed-up stack over an FP16 SiLU-based model on a dense
  accelerator: quantization contributes ~3.78x and temporal sparsity a
  further ~1.83x for ~6.91x total (Fig. 12, bottom / Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pipeline import HardwareEvaluation


@dataclass
class WorkloadSpeedup:
    """Fig. 12 numbers for one dataset."""

    workload: str
    sparsity_speedup: float
    energy_saving: float
    quantization_speedup: float
    total_speedup: float
    average_sparsity: float


@dataclass
class SystemEvaluation:
    """Fig. 12 summary across all evaluated workloads."""

    per_workload: list[WorkloadSpeedup]

    @property
    def average_sparsity_speedup(self) -> float:
        return float(np.mean([w.sparsity_speedup for w in self.per_workload]))

    @property
    def average_energy_saving(self) -> float:
        return float(np.mean([w.energy_saving for w in self.per_workload]))

    @property
    def average_quantization_speedup(self) -> float:
        return float(np.mean([w.quantization_speedup for w in self.per_workload]))

    @property
    def average_total_speedup(self) -> float:
        return float(np.mean([w.total_speedup for w in self.per_workload]))

    def speedup_stack(self) -> dict[str, float]:
        """The Fig. 12 (bottom) stack: FP16 baseline, +quantization, +sparsity."""
        return {
            "FP16 dense": 1.0,
            "+ 4-bit quantization": self.average_quantization_speedup,
            "+ temporal sparsity (total)": self.average_total_speedup,
        }


def summarize_hardware(evaluations: list[HardwareEvaluation]) -> SystemEvaluation:
    """Convert raw per-workload hardware evaluations into the Fig. 12 summary."""
    rows = [
        WorkloadSpeedup(
            workload=ev.workload,
            sparsity_speedup=ev.sparsity_speedup,
            energy_saving=ev.sparsity_energy_saving,
            quantization_speedup=ev.quantization_speedup,
            total_speedup=ev.total_speedup,
            average_sparsity=ev.average_sparsity,
        )
        for ev in evaluations
    ]
    return SystemEvaluation(per_workload=rows)


@dataclass
class FormatSpeedup:
    """Fig. 1 annotation for one data format: image quality proxy and speed-up."""

    format_name: str
    fid: float
    speedup_vs_fp16: float


def figure1_summary(
    format_fids: dict[str, float], quantization_speedup: float, total_speedup: float
) -> list[FormatSpeedup]:
    """Assemble the Fig. 1 row: FP16 (1x), INT4 / INT4-VSQ (quant-only speed-up), Ours (total).

    ``format_fids`` maps format names to measured FID values; speed-ups follow
    the paper's attribution: pure 4-bit formats only benefit from the
    precision scaling, while "Ours" adds the temporal-sparsity speed-up.
    """
    rows = []
    for name, fid in format_fids.items():
        if name in ("FP16", "FP32"):
            speed = 1.0
        elif name.startswith("Ours"):
            speed = total_speedup
        else:
            speed = quantization_speedup
        rows.append(FormatSpeedup(format_name=name, fid=fid, speedup_vs_fp16=speed))
    return rows
