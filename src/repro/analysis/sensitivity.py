"""Block-wise quantization sensitivity analysis (Fig. 3).

The experiment keeps a single U-Net block at 4-bit while every other block
runs at MXINT8, and measures the resulting generation quality.  Blocks whose
4-bit quantization degrades quality the most are "sensitive" and are kept at
8-bit by the mixed-precision policy; the paper finds only the first and last
few blocks matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import SQDMPipeline
from ..core.policy import single_block_4bit_policy


@dataclass
class BlockSensitivity:
    """FID impact of quantizing one block to 4-bit (rest at MXINT8)."""

    block_name: str
    order: int
    fid: float
    fid_delta: float  # relative to the all-MXINT8 reference


@dataclass
class SensitivityReport:
    """Full Fig. 3 sweep for one workload."""

    workload: str
    reference_fid: float
    blocks: list[BlockSensitivity]

    def most_sensitive(self, top_k: int = 2) -> list[BlockSensitivity]:
        return sorted(self.blocks, key=lambda b: b.fid_delta, reverse=True)[:top_k]

    def boundary_blocks_are_most_sensitive(self, top_k: int = 2) -> bool:
        """Check the paper's conclusion: the most sensitive blocks sit at the ends."""
        if not self.blocks:
            return True
        orders = sorted(b.order for b in self.blocks)
        boundary = set(orders[:1] + orders[-1:])
        top = self.most_sensitive(top_k)
        return any(b.order in boundary for b in top)


def block_sensitivity_sweep(pipeline: SQDMPipeline) -> SensitivityReport:
    """Run the Fig. 3 sweep: for each block, 4-bit that block only and measure FID."""
    model = pipeline.workload.unet
    infos = model.block_infos()

    # Reference: every block at MXINT8.
    reference = pipeline.evaluate_format("MXINT8")

    blocks = []
    for info in infos:
        policy = single_block_4bit_policy(model, info.name)
        evaluation = pipeline.evaluate_policy(policy, scheme_name=policy.name)
        blocks.append(
            BlockSensitivity(
                block_name=info.name,
                order=info.order,
                fid=evaluation.fid,
                fid_delta=evaluation.fid - reference.fid,
            )
        )
    return SensitivityReport(
        workload=pipeline.workload.name, reference_fid=reference.fid, blocks=blocks
    )
