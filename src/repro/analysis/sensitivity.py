"""Block-wise quantization sensitivity analysis (Fig. 3).

The experiment keeps a single U-Net block at 4-bit while every other block
runs at MXINT8, and measures the resulting generation quality.  Blocks whose
4-bit quantization degrades quality the most are "sensitive" and are kept at
8-bit by the mixed-precision policy; the paper finds only the first and last
few blocks matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.experiments import SweepSpec, run_sweep
from ..core.pipeline import SQDMPipeline
from ..core.policy import single_block_4bit_policy


@dataclass
class BlockSensitivity:
    """FID impact of quantizing one block to 4-bit (rest at MXINT8)."""

    block_name: str
    order: int
    fid: float
    fid_delta: float  # relative to the all-MXINT8 reference


@dataclass
class SensitivityReport:
    """Full Fig. 3 sweep for one workload."""

    workload: str
    reference_fid: float
    blocks: list[BlockSensitivity]

    def most_sensitive(self, top_k: int = 2) -> list[BlockSensitivity]:
        return sorted(self.blocks, key=lambda b: b.fid_delta, reverse=True)[:top_k]

    def boundary_blocks_are_most_sensitive(self, top_k: int = 2) -> bool:
        """Check the paper's conclusion: the most sensitive blocks sit at the ends."""
        if not self.blocks:
            return True
        orders = sorted(b.order for b in self.blocks)
        boundary = set(orders[:1] + orders[-1:])
        top = self.most_sensitive(top_k)
        return any(b.order in boundary for b in top)


def block_sensitivity_sweep(
    pipeline: SQDMPipeline,
    executor: str = "thread",
    max_workers: int | None = None,
) -> SensitivityReport:
    """Run the Fig. 3 sweep: for each block, 4-bit that block only and measure FID.

    The per-block evaluations are independent, so they fan out through the
    declarative sweep runner (``executor="serial"`` restores the sequential
    behaviour; ``"service"`` routes the grid points through a shared
    :class:`~repro.serve.service.EvaluationService` as callable jobs, which
    still run on threads; ``"process"`` is not supported because the
    evaluation closes over the live pipeline/model, which cannot cross
    process boundaries).  Each grid point deep-copies its own model; the
    shared FID reference statistics are materialized up front so workers
    only read them.
    """
    if executor not in ("thread", "serial", "service"):
        raise ValueError(
            "block_sensitivity_sweep supports executor='thread', 'serial' or "
            f"'service', got {executor!r}"
        )
    from ..core.execution import resolve_executor

    model = pipeline.workload.unet
    infos = model.block_infos()

    # Reference: every block at MXINT8.  Also warms the cached FID evaluator
    # before the fan-out below.
    reference = pipeline.evaluate_format("MXINT8")

    def evaluate_block(block_name: str) -> BlockSensitivity:
        policy = single_block_4bit_policy(model, block_name)
        evaluation = pipeline.evaluate_policy(policy, scheme_name=policy.name)
        info = next(i for i in infos if i.name == block_name)
        return BlockSensitivity(
            block_name=block_name,
            order=info.order,
            fid=evaluation.fid,
            fid_delta=evaluation.fid - reference.fid,
        )

    # Resolve the string to an executor instance here (the run_sweep string
    # path is a deprecated shim); "serial" maps to the inline backend.
    with resolve_executor(
        "inline" if executor == "serial" else executor, max_workers=max_workers
    ) as runner:
        sweep = run_sweep(
            evaluate_block,
            SweepSpec(
                name="fig3-block-sensitivity", grid={"block_name": [i.name for i in infos]}
            ),
            executor=runner,
        )
    return SensitivityReport(
        workload=pipeline.workload.name, reference_fid=reference.fid, blocks=sweep.values()
    )
